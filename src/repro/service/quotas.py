"""Per-tenant quotas: token-bucket update rates and resident-byte budgets.

A multi-tenant sketch platform admits traffic it never fully trusts: one
tenant's burst must not starve the shard workers, and one tenant's sketch
family must not eat the whole memory envelope.  This module is the policy
half of that story — :mod:`repro.service.tenancy` is the mechanism half:

* :class:`TokenBucket` — the classic refill-at-``rate`` bucket bounding a
  tenant's sustained update rate while allowing bursts up to ``burst``
  items; injectable clock for deterministic tests;
* :class:`TenantQuota` — one tenant's limits (update rate, resident
  bytes) plus the enforcement ``policy``, reusing the shard backpressure
  vocabulary (:data:`~repro.service.BACKPRESSURE_POLICIES`): ``"block"``
  waits for budget, ``"drop"`` discards and counts, ``"error"`` raises
  :class:`TenantQuotaError` (the HTTP-429 shape);
* :class:`TenantQuotaError` — a :class:`~repro.service.BackpressureError`
  subclass carrying the tenant and the exhausted resource, so callers can
  distinguish "your quota" from "the shard queue".

Every quota rejection — dropped or raised — is accounted per tenant in
``service_tenant_rejects_total`` (label-guarded; see docs/TENANCY.md).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.service.worker import BACKPRESSURE_POLICIES, BackpressureError

#: Reasons a quota can reject ingest, as ``service_tenant_rejects_total``
#: ``reason`` label values.
QUOTA_REASONS = ("rate", "bytes")


class TenantQuotaError(BackpressureError):
    """A tenant's quota rejected an ingest call (the 429 of this service).

    ``tenant`` names the offender, ``reason`` the exhausted resource
    (``"rate"`` or ``"bytes"``), and ``retry_after`` — for rate
    rejections — the seconds until the token bucket could admit the batch.
    """

    def __init__(
        self,
        tenant: str,
        reason: str,
        message: str,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retry_after = retry_after


class TokenBucket:
    """Token bucket: sustained ``rate`` tokens/second, bursts to ``burst``.

    The bucket starts full.  :meth:`try_take` is non-blocking — it either
    debits ``n`` tokens and returns ``0.0``, or leaves the bucket untouched
    and returns the seconds until ``n`` tokens will have accumulated
    (callers implement block/drop/error on top).  Thread-safe; ``clock``
    is injectable (monotonic seconds) so tests can drive time by hand.

    Requests larger than ``burst`` are admissible once the bucket is full —
    the bucket then goes negative, borrowing against future refill — so a
    single oversized batch cannot be rejected forever.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/s, got {rate}")
        burst = rate if burst is None else burst
        if burst <= 0:
            raise ValueError(f"burst must be > 0 tokens, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def try_take(self, n: float) -> float:
        """Debit ``n`` tokens if possible; else the seconds until possible.

        Returns ``0.0`` on success.  A positive return is the wait until
        the bucket will hold the needed tokens at the current rate (the
        ``retry_after`` of a 429); nothing is debited on failure.
        """
        if n < 0:
            raise ValueError(f"token request must be >= 0, got {n}")
        with self._lock:
            self._refill_locked(self._clock())
            # an oversized request is granted from a full bucket (the
            # balance goes negative, borrowing against future refill);
            # otherwise it could never be admitted at all
            needed = min(n, self.burst)
            if self._tokens >= needed:
                self._tokens -= n
                return 0.0
            return (needed - self._tokens) / self.rate

    def take(self, n: float, timeout: Optional[float] = None) -> bool:
        """Blocking :meth:`try_take`: sleep until admitted or deadline.

        Returns True once the tokens are debited; False when ``timeout``
        seconds elapse first (nothing debited).  ``timeout=None`` waits as
        long as the bucket says it must.
        """
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            wait = self.try_take(n)
            if wait == 0.0:
                return True
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                wait = min(wait, remaining)
            time.sleep(min(wait, 0.05))

    @property
    def tokens(self) -> float:
        """Current balance (after refilling to now); for tests and stats."""
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission limits and the policy when they are hit.

    Attributes
    ----------
    rate:
        Sustained update budget, items/second (``None`` = unlimited).
    burst:
        Token-bucket burst capacity, items (default: one second's worth).
    max_resident_bytes:
        Ceiling on the tenant's modelled resident bytes
        (:meth:`~repro.service.ShardedSketchService.resident_bytes`);
        ``None`` = unlimited.  Checked against the tenancy layer's cached
        measurement, so enforcement lags by at most the accounting
        interval.
    policy:
        What an over-quota ingest gets — the shard backpressure
        vocabulary: ``"block"`` (rate only: wait for tokens, up to
        ``block_timeout``), ``"drop"`` (discard the batch, count it), or
        ``"error"`` (raise :class:`TenantQuotaError`).  Byte-quota
        violations under ``"block"`` degrade to ``"error"``: blocking
        cannot shrink a sketch.
    block_timeout:
        Deadline (seconds) for the ``"block"`` policy's token wait;
        ``None`` waits indefinitely.
    """

    rate: Optional[float] = None
    burst: Optional[float] = None
    max_resident_bytes: Optional[int] = None
    policy: str = "block"
    block_timeout: Optional[float] = None

    def __post_init__(self):
        if self.policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0 items/s, got {self.rate}")
        if self.burst is not None and self.rate is None:
            raise ValueError("burst without rate makes no bucket")
        if self.max_resident_bytes is not None and self.max_resident_bytes <= 0:
            raise ValueError(
                f"max_resident_bytes must be > 0, got {self.max_resident_bytes}"
            )

    def make_bucket(
        self, clock: Callable[[], float] = time.monotonic
    ) -> Optional[TokenBucket]:
        """The tenant's :class:`TokenBucket`, or None when rate-unlimited."""
        if self.rate is None:
            return None
        return TokenBucket(self.rate, self.burst, clock=clock)


#: The wide-open default: no rate, no byte ceiling, blocking policy.
UNLIMITED_QUOTA = TenantQuota()
