"""The sharded service facade: lifecycle, ingest, watermarks, typed queries.

:class:`ShardedSketchService` glues the router, the per-shard workers, and
the query coordinator into one object with the paper's query surface::

    service = ShardedSketchService(
        lambda: ChainMisraGries(eps=0.001), num_shards=4, partition="hash",
    )
    with service:
        service.ingest_batch(keys, timestamps)
        service.drain()                      # read-your-writes barrier
        service.heavy_hitters_at(t, 0.01)    # fan-out + combine

Consistency model
-----------------
Every ingest call is assigned a global, monotonically increasing **seqno**.
The **watermark** is the largest seqno ``s`` such that every shard has
applied all items it was routed from calls ``<= s``; queries therefore
reflect at least everything up to the watermark.  ``wait_for(seqno)`` gives
read-your-writes for a specific call; ``drain()`` waits for everything
acked so far.  Because workers apply FIFO and the router partitions stably,
a timestamp-monotone input stream stays monotone per shard.

Durability
----------
With ``directory=`` each shard wraps its sketch in a
:class:`~repro.durability.DurableSketch` under ``shard-NN/`` and the
topology is recorded in an atomically-written manifest
(:mod:`repro.durability.manifest`).  :meth:`ShardedSketchService.open`
validates the manifest and replays every shard's WAL, restoring the full
service; because routing is deterministic and seeded, recovered keys keep
living on the shard that holds their history.

Self-healing
------------
With ``supervise=True`` (durable services) a
:class:`~repro.service.ShardSupervisor` watches the workers: a poisoned
shard is rebuilt in place from its snapshot+WAL while its traffic parks in
a bounded redirect buffer, then replays in seqno order — producers and the
watermark ride through the failure instead of seeing
:class:`ShardFailedError`.  Pair it with ``partial="allow"`` and
``call_timeout=`` so queries keep answering (with error certificates)
while a shard is down; see ``docs/SERVICE.md`` for the full failure-
handling model.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, NamedTuple, Optional

from repro.core.batch import StreamBatch
from repro.core.combine import combine_heavy_hitters
from repro.durability.manifest import (
    ServiceManifest,
    read_manifest,
    write_manifest,
)
from repro.durability.store import DurableSketch
from repro.service.backend import validate_backend
from repro.service.coordinator import QueryCoordinator
from repro.service.proc_worker import ProcessShardWorker
from repro.service.router import ShardRouter
from repro.service.supervisor import FAILED, HEALTHY, ShardSupervisor
from repro.service.worker import ShardFailedError, ShardWorker
from repro.telemetry.server import IntrospectionServer
from repro.telemetry.spans import span


class IngestReceipt(NamedTuple):
    """What happened to one ingest call.

    Attributes
    ----------
    seqno:
        The call's global sequence number (pass to :meth:`wait_for`).
    accepted:
        Items enqueued to shard workers.
    dropped:
        Items discarded by the ``"drop"`` backpressure policy.
    """

    seqno: int
    accepted: int
    dropped: int


class ShardedSketchService:
    """Sharded, concurrent ingest and query facade over persistent sketches.

    Parameters
    ----------
    factory:
        Zero-argument callable building one empty shard sketch.  Must be
        deterministic (same parameters and seed every call) — shards must
        be mergeable with each other, and durable recovery replays through
        a fresh ``factory()`` instance.
    num_shards:
        Shard count ``K``.
    partition:
        ``"hash"`` (key-addressed sketches) or ``"round_robin"``
        (key-agnostic sketches); see :class:`~repro.service.ShardRouter`.
    seed:
        Router hash seed (persisted in the durable manifest).
    backend:
        Shard execution backend: ``"thread"`` (default — sketches live in
        this process, one apply thread per shard, GIL-bound) or
        ``"process"`` — each shard's sketch (and durable store) lives in
        a dedicated forked worker process, fused batches ship through
        shared memory, and shards run truly in parallel.  Identical
        results either way; see ``docs/SCALING.md`` for the selection
        matrix.  Recorded in the durable manifest (informational).
    queue_capacity, backpressure, max_drain_items, min_drain_items, linger:
        Per-shard queue sizing, policy, and group-commit batching; see
        :class:`~repro.service.ShardWorker`.
    block_timeout:
        Deadline (seconds) for the ``"block"`` backpressure policy's
        capacity wait — on expiry producers get
        :class:`~repro.service.BackpressureError` instead of hanging on a
        wedged or dead shard.  ``None`` (default) blocks indefinitely.
    ingest_buffer_items:
        Producer-side accumulator (Kafka-style): arrival batches are staged
        and only partitioned + submitted once at least this many items have
        accumulated, amortising the per-call routing cost over many small
        arrivals.  ``0`` (default) routes every call immediately.  Staged
        items are not yet visible to shards, so the watermark holds at the
        last fully-submitted seqno; ``wait_for``/``drain``/``flush``/
        ``close`` flush the stage first, preserving read-your-writes.  With
        staging on, receipts report drop-policy losses as ``0`` — drops
        happen at (deferred) submit time and appear in :meth:`stats`.
    cache_size:
        Coordinator answer-cache capacity (``0`` disables).
    cache:
        Optional shared :class:`~repro.service.AnswerCache` — the
        multi-tenant service passes one cache to every tenant's service so
        the global answer-cache footprint stays bounded; entries remain
        partitioned by namespace.  Overrides ``cache_size``.
    cache_namespace:
        This service's namespace in the (possibly shared) answer cache;
        defaults to a process-unique id.
    directory:
        Enable durability: per-shard ``DurableSketch`` directories plus a
        service manifest live under this root.
    fs:
        Filesystem shim for durability (fault injection in tests).
    durable_options:
        Extra keyword arguments forwarded to ``DurableSketch.open``
        (``fsync_policy``, ``snapshot_every``, ...).
    call_timeout:
        Per-shard query read deadline; see
        :class:`~repro.service.QueryCoordinator`.
    partial:
        Default degraded-mode query policy, ``"reject"`` (strict,
        default) or ``"allow"`` (answer covered shards, attach an
        :class:`~repro.service.ErrorCertificate` to explain plans).
    supervise:
        Enable the :class:`~repro.service.ShardSupervisor`: poisoned
        shards are rebuilt in place from snapshot+WAL (durable services)
        with their traffic parked and replayed, instead of staying
        poisoned until restart.  Requires no restart, but changes failure
        semantics — producers no longer see :class:`ShardFailedError` for
        a recoverable fault — so it is opt-in.
    supervisor_options:
        Extra keyword arguments for the supervisor (``max_rebuilds``,
        ``backoff_base``, ``redirect_capacity``, ...).
    sketch_wrapper:
        Optional ``(shard, sketch) -> sketch`` hook applied to every shard
        sketch at construction *and* after each rebuild — the chaos
        harness uses it to interpose fault injectors outside the durable
        store.
    snapshot_on_rebuild:
        Take a fresh snapshot right after a shard rebuild recovers
        (default True): compacts the replayed WAL so repeated rebuilds do
        not re-replay ever-longer tails.
    start:
        Start worker threads immediately (default).
    """

    def __init__(
        self,
        factory: Callable[[], Any],
        num_shards: int = 4,
        *,
        partition: str = "hash",
        seed: int = 0,
        backend: str = "thread",
        queue_capacity: int = 8192,
        backpressure: str = "block",
        max_drain_items: int = 65536,
        min_drain_items: int = 1,
        linger: float = 0.0,
        block_timeout: Optional[float] = None,
        ingest_buffer_items: int = 0,
        cache_size: int = 256,
        cache=None,
        cache_namespace: Optional[str] = None,
        directory=None,
        fs=None,
        durable_options: Optional[dict] = None,
        call_timeout: Optional[float] = None,
        partial: str = "reject",
        supervise: bool = False,
        supervisor_options: Optional[dict] = None,
        sketch_wrapper: Optional[Callable[[int, Any], Any]] = None,
        snapshot_on_rebuild: bool = True,
        start: bool = True,
    ):
        if ingest_buffer_items < 0:
            raise ValueError(
                f"ingest_buffer_items must be >= 0, got {ingest_buffer_items}"
            )
        self.backend = validate_backend(backend)
        self._router = ShardRouter(num_shards, mode=partition, seed=seed)
        self._progress = threading.Condition()
        self._ingest_lock = threading.Lock()
        self._seqno = 0
        self._acked_seqno = 0
        self._submitted_seqno = 0
        self.ingest_buffer_items = ingest_buffer_items
        self._stage: list = []
        self._stage_items = 0
        self._closed = False
        self._started = False
        self.directory = directory
        self.durable = directory is not None
        self._factory = factory
        self._sketch_wrapper = sketch_wrapper
        self._snapshot_on_rebuild = snapshot_on_rebuild
        self._manifest: Optional[ServiceManifest] = None
        self._durable_options: dict = {}
        self._worker_options = dict(
            capacity=queue_capacity,
            policy=backpressure,
            max_drain_items=max_drain_items,
            min_drain_items=min_drain_items,
            linger=linger,
            block_timeout=block_timeout,
            on_progress=self._notify_progress,
        )
        if self.durable:
            manifest = read_manifest(directory)
            wanted = ServiceManifest(num_shards, partition, seed, self.backend)
            if manifest is None:
                write_manifest(directory, wanted, fs=fs)
                manifest = wanted
            elif (manifest.num_shards, manifest.partition, manifest.seed) != (
                num_shards,
                partition,
                seed,
            ):
                raise ValueError(
                    f"service manifest at {directory} records topology "
                    f"({manifest.num_shards}, {manifest.partition!r}, {manifest.seed}), "
                    f"got ({num_shards}, {partition!r}, {seed}) — "
                    "use ShardedSketchService.open to adopt the stored topology"
                )
            elif manifest.backend != self.backend:
                # the backend is informational (the shard directories are
                # backend-neutral): adopt the caller's choice on disk
                write_manifest(directory, wanted, fs=fs)
                manifest = wanted
            self._manifest = manifest
            options = dict(durable_options or {})
            if fs is not None:
                options.setdefault("fs", fs)
            self._durable_options = options
        if self.backend == "process":
            self._workers = [
                ProcessShardWorker(
                    shard,
                    self._shard_build(shard),
                    wal_directory=(
                        self._manifest.shard_directory(directory, shard)
                        if self.durable
                        else None
                    ),
                    **self._worker_options,
                )
                for shard in range(num_shards)
            ]
        else:
            if self.durable:
                sketches = [
                    DurableSketch.open(
                        factory,
                        self._manifest.shard_directory(directory, shard),
                        **self._durable_options,
                    )
                    for shard in range(num_shards)
                ]
            else:
                sketches = [factory() for _ in range(num_shards)]
            if sketch_wrapper is not None:
                sketches = [
                    sketch_wrapper(shard, sketch)
                    for shard, sketch in enumerate(sketches)
                ]
            self._workers = [
                ShardWorker(shard, sketch, **self._worker_options)
                for shard, sketch in enumerate(sketches)
            ]
        self._supervisor: Optional[ShardSupervisor] = None
        if supervise:
            self._supervisor = ShardSupervisor(
                self._workers,
                self._rebuild_worker,
                can_rebuild=self.durable,
                policy=backpressure,
                on_progress=self._notify_progress,
                **(supervisor_options or {}),
            )
        self._coordinator = QueryCoordinator(
            self._workers,
            self.watermark,
            cache_size=cache_size,
            cache=cache,
            namespace=cache_namespace,
            call_timeout=call_timeout,
            partial=partial,
            parked_items=(
                None if self._supervisor is None else self._supervisor.parked_items
            ),
        )
        self._auditor = None
        if start:
            self.start()

    @classmethod
    def open(cls, factory: Callable[[], Any], directory, **options) -> "ShardedSketchService":
        """Reopen a durable service, adopting the stored topology.

        Reads the manifest (shard count, partition mode, router seed) and
        recovers every shard's ``DurableSketch`` — snapshot plus WAL-tail
        replay — so the reassembled service answers exactly as the
        pre-crash one did at its durable watermark.  The stored shard
        backend is adopted too; pass ``backend=`` to override it (the
        shard directories are backend-neutral).
        """
        manifest = read_manifest(directory)
        if manifest is None:
            raise FileNotFoundError(f"no service manifest under {directory}")
        options.setdefault("backend", manifest.backend)
        return cls(
            factory,
            manifest.num_shards,
            partition=manifest.partition,
            seed=manifest.seed,
            directory=directory,
            **options,
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return self._router.num_shards

    def start(self) -> None:
        """Start the shard worker threads (idempotent)."""
        if self._started:
            return
        for worker in self._workers:
            worker.start()
        if self._supervisor is not None:
            self._supervisor.start()
        self._started = True

    def _notify_progress(self) -> None:
        with self._progress:
            self._progress.notify_all()

    def _shard_build(self, shard: int) -> Callable[[], Any]:
        """The build closure for one shard (runs in the worker child).

        Process-backend shards construct their sketch *after* the fork:
        the closure opens the shard's ``DurableSketch`` (or calls the
        plain factory) and applies the ``sketch_wrapper`` inside the
        worker process, so the WAL handle, snapshots, and any injected
        wrappers are owned by the child.
        """
        factory = self._factory
        wrapper = self._sketch_wrapper
        durable = self.durable
        directory = (
            self._manifest.shard_directory(self.directory, shard)
            if durable
            else None
        )
        options = self._durable_options

        def build():
            if durable:
                sketch = DurableSketch.open(factory, directory, **options)
            else:
                sketch = factory()
            if wrapper is not None:
                sketch = wrapper(shard, sketch)
            return sketch

        return build

    def _rebuild_worker(self, shard: int, old: ShardWorker) -> ShardWorker:
        """Recover one shard from disk and return a fresh, unstarted worker.

        The supervisor's rebuild hook.  Thread backend: closes the
        poisoned store's WAL handle best-effort, recovers the shard's
        ``DurableSketch`` (snapshot + WAL-tail replay — exactly the
        restart path), optionally compacts with a fresh snapshot,
        re-applies the ``sketch_wrapper``, and rebuilds the worker with
        the service's standard options.  Process backend: makes sure the
        old worker child is dead (two processes must never share a WAL),
        then returns a fresh :class:`ProcessShardWorker` whose child will
        run the same recovery when the supervisor starts it.  Either way
        the supervisor installs watermark-correct seqnos and starts the
        replacement.
        """
        if not self.durable or self._manifest is None:
            raise RuntimeError(
                f"shard {shard} is not durable — nothing to rebuild from"
            )
        directory = self._manifest.shard_directory(self.directory, shard)
        if self.backend == "process":
            if isinstance(old, ProcessShardWorker):
                old.ensure_child_dead()
            return ProcessShardWorker(
                shard,
                self._shard_build(shard),
                wal_directory=directory,
                snapshot_on_open=self._snapshot_on_rebuild,
                **self._worker_options,
            )
        wal = getattr(old.sketch, "wal", None)
        if wal is not None:
            try:
                wal.close()
            except Exception:  # poisoned mid-append; the handle may be torn
                pass
        sketch = DurableSketch.open(
            self._factory, directory, **self._durable_options
        )
        if self._snapshot_on_rebuild:
            sketch.snapshot()
        if self._sketch_wrapper is not None:
            sketch = self._sketch_wrapper(shard, sketch)
        return ShardWorker(shard, sketch, **self._worker_options)

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")
        if not self._started:
            raise RuntimeError("service not started — call start()")

    def __enter__(self) -> "ShardedSketchService":
        """Enter a context: ensure workers are running."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close on context exit; force-close if an exception is in flight."""
        self.close(force=exc_type is not None)

    def close(self, force: bool = False) -> None:
        """Drain, stop workers, and close durable stores.

        With ``force=True`` shard failures are tolerated (their durable
        stores are left as-is for recovery); otherwise the first failure is
        re-raised as :class:`ShardFailedError` after all threads stop.
        """
        if self._closed:
            return
        self._closed = True
        if self._started and self._stage_items:
            try:
                self._flush_staged()
            except ShardFailedError:
                if not force:
                    raise
            except RuntimeError as exc:
                # tolerate only the submit-vs-stop shutdown race under
                # force; any other RuntimeError (bad input, backpressure
                # deadline, closed store) is a real failure and must
                # surface even on a forced close
                if not force or "stopped" not in str(exc):
                    raise
        if self._supervisor is not None:
            self._supervisor.stop()
        for worker in self._workers:
            worker.stop()
        failed = [worker for worker in self._workers if worker.failure is not None]
        if self.durable:
            for worker in self._workers:
                if worker.failure is None:
                    worker.close_store()
        if failed and not force:
            raise ShardFailedError(failed[0].index, failed[0].failure)

    # -- ingest ------------------------------------------------------------

    def ingest(self, value, timestamp, weight: float = 1.0) -> int:
        """Route and enqueue one item; returns the call's seqno."""
        weights = None if weight == 1.0 else [weight]
        return self.ingest_batch([value], [timestamp], weights).seqno

    def ingest_batch(self, values, timestamps, weights=None) -> IngestReceipt:
        """Partition a batch across shards and enqueue the sub-batches.

        Returns an :class:`IngestReceipt`; the items are *accepted*, not
        yet necessarily applied — use :meth:`wait_for` (with the receipt's
        seqno) or :meth:`drain` for read-your-writes.  Producers may call
        this from multiple threads; calls are serialised internally.
        """
        self._ensure_open()
        batch = StreamBatch.from_arrays(values, timestamps, weights)
        n = len(batch)
        if n == 0:
            return IngestReceipt(self._acked_seqno, 0, 0)
        # root span of the ingest trace: staging, routing, and each shard's
        # enqueue nest under it on this thread; the queue-wait and fused
        # apply recorded later on the worker threads link back via the
        # TraceContext each enqueued sub-batch carries
        if self._auditor is not None:
            # shadow-record before staging: ground truth reflects exactly
            # the accepted arrays, parent-side, so shard rebuilds (WAL
            # replay in a worker) can never corrupt or double-count it
            self._auditor.observe_batch(
                batch.values, batch.timestamps, batch.weights
            )
        with span("service.ingest_batch", items=n) as ingest_span:
            with self._ingest_lock:
                self._seqno += 1
                seqno = self._seqno
                ingest_span.set_attr("seqno", seqno)
                if self.ingest_buffer_items > 0:
                    self._stage.append(batch)
                    self._stage_items += n
                    self._acked_seqno = seqno
                    ingest_span.set_attr("staged", True)
                    if self._stage_items >= self.ingest_buffer_items:
                        self._flush_stage_locked()
                    return IngestReceipt(seqno, n, 0)
                accepted, dropped = self._route_and_submit(batch, seqno)
                self._acked_seqno = seqno
                self._submitted_seqno = seqno
            return IngestReceipt(seqno, accepted, dropped)

    def _route_and_submit(self, batch: StreamBatch, seqno) -> tuple:
        """Split one fused batch and enqueue the per-shard sub-batches.

        The split is zero-copy (array views of ``batch``; see
        :meth:`~repro.service.ShardRouter.split`), and each sub-batch
        object is handed to its worker queue as-is.
        """
        parts = self._router.split(batch)
        accepted = dropped = 0
        supervisor = self._supervisor
        for shard, part in enumerate(parts):
            if part is None:
                continue
            if supervisor is not None:
                got = supervisor.submit(shard, part, seqno)
            else:
                got = self._workers[shard].submit(part, seqno)
            accepted += got
            dropped += len(part) - got
        return accepted, dropped

    def _flush_stage_locked(self) -> None:
        """Route everything staged (``_ingest_lock`` held).

        Staged arrival batches are fused once, columnarly
        (:meth:`StreamBatch.concat` — a single staged batch is routed
        as-is, without copies), then split across the shards.
        """
        if not self._stage:
            return
        batch = StreamBatch.concat(self._stage)
        self._stage.clear()
        self._stage_items = 0
        seqno = self._acked_seqno
        with span("service.stage_flush", items=len(batch), seqno=seqno):
            self._route_and_submit(batch, seqno)
        self._submitted_seqno = seqno

    def _flush_staged(self) -> None:
        """Route any staged arrivals (no-op when staging is off or empty)."""
        if self._stage_items:
            with self._ingest_lock:
                self._flush_stage_locked()

    # -- consistency -------------------------------------------------------

    def watermark(self) -> int:
        """Largest seqno whose items every shard has fully applied.

        Computed from per-shard (acked, applied) pairs: a shard lagging
        behind its own acked seqno pins the watermark at what it *has*
        applied; when no shard lags, the watermark is the global acked
        seqno.  Reads are monotone-conservative under concurrency.
        """
        # read _submitted before _stage_items: _submitted only grows, so a
        # concurrent stage flush can only make this floor conservative
        submitted = self._submitted_seqno
        floor = submitted if self._stage_items else self._acked_seqno
        supervisor = self._supervisor
        for shard, worker in enumerate(self._workers):
            applied = worker.applied_seqno
            acked = worker.acked_seqno
            if supervisor is not None:
                # items parked in a redirect buffer are acknowledged but
                # not yet applied: they pin the watermark exactly like a
                # lagging worker queue until the replay lands them
                parked = supervisor.parked_acked(shard)
                if parked > acked:
                    acked = parked
            if applied < acked:
                floor = min(floor, applied)
        return floor

    def _raise_if_unrecoverable(self) -> None:
        """Raise :class:`ShardFailedError` for a shard that cannot heal.

        Unsupervised, any poisoned worker is terminal.  Supervised, a
        poisoned worker is merely ``REBUILDING``/``DEGRADED`` — its items
        will still apply after the rebuild — so only a shard whose circuit
        breaker opened (``FAILED``) aborts a consistency wait.
        """
        supervisor = self._supervisor
        if supervisor is None:
            for worker in self._workers:
                worker.raise_if_failed()
            return
        for shard, state in supervisor.states().items():
            if state == FAILED:
                worker = self._workers[shard]
                raise ShardFailedError(
                    shard,
                    worker.failure
                    or RuntimeError("circuit breaker open (max rebuilds exhausted)"),
                )

    def wait_for(self, seqno: int, timeout: Optional[float] = None) -> bool:
        """Block until the watermark reaches ``seqno``; False on timeout.

        Raises :class:`ShardFailedError` immediately if a shard worker
        died unrecoverably — its items will never apply, so the wait would
        never end.  Under supervision a rebuilding shard does *not* abort
        the wait: the rebuild + redirect replay will land its items, and
        the wait simply spans the failover.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        self._flush_staged()
        while True:
            self._raise_if_unrecoverable()
            if self.watermark() >= seqno:
                return True
            # an explicit consistency point overrides min_drain_items
            # group-commit; re-request each round in case new sub-batches
            # arrived below threshold after the last drain
            for worker in self._workers:
                worker.request_drain()
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            with self._progress:
                if self.watermark() >= seqno:
                    return True
                self._progress.wait(
                    0.5 if remaining is None else min(remaining, 0.5)
                )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until everything acked so far is applied on every shard."""
        return self.wait_for(self._acked_seqno, timeout)

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Drain, then force durable shards' WALs to stable storage."""
        if not self.drain(timeout):
            return False
        if self.durable:
            for worker in self._workers:
                worker.flush_store()
        return True

    # -- queries -----------------------------------------------------------

    def _supports(self, method: str) -> bool:
        return self._workers[0].supports(method)

    def _owner(self, key) -> Optional[int]:
        """Owning shard for ``key`` under hash partitioning, else None."""
        if self._router.mode != "hash":
            return None
        return self._router.route(key)

    def query(
        self,
        method: str,
        *args,
        combine="list",
        shard=None,
        explain=False,
        partial=None,
    ):
        """Generic fan-out: ``method(*args)`` on shards, combined.

        ``combine`` is a combiner name (``"sum"``, ``"any"``, ``"union"``,
        ``"merge"``, ``"list"``) or a callable over the per-shard result
        list; ``shard`` restricts the call to one shard.  Answers are
        LRU-cached keyed by the ingest watermark.  ``explain=True`` returns
        ``(answer, plan)`` with a structured
        :class:`~repro.service.QueryPlan` of what each shard read.
        ``partial`` overrides the service's degraded-mode policy for this
        query (``"reject"`` or ``"allow"``); under ``"allow"`` the plan
        carries an :class:`~repro.service.ErrorCertificate` whenever a
        shard could not be consulted.
        """
        return self._coordinator.query(
            method,
            *args,
            combine=combine,
            shard=shard,
            explain=explain,
            partial=partial,
        )

    def estimate_at(self, key, timestamp, explain=False) -> float:
        """ATTP point estimate of ``key`` at ``timestamp``.

        Hash partitioning consults only the owning shard (its sub-stream
        contains every occurrence of ``key``, so no cross-shard noise is
        added); round-robin sums the per-shard estimates.  ``explain=True``
        returns ``(estimate, plan)``.
        """
        owner = self._owner(key)
        if owner is not None:
            return self.query(
                "estimate_at", key, timestamp, shard=owner, combine="sum", explain=explain
            )
        return self.query(
            "estimate_at", key, timestamp, combine="sum", explain=explain
        )

    def estimate_since(self, key, timestamp, explain=False) -> float:
        """BITP point estimate of ``key`` over the suffix since ``timestamp``.

        ``explain=True`` returns ``(estimate, plan)``.
        """
        owner = self._owner(key)
        if owner is not None:
            return self.query(
                "estimate_since", key, timestamp, shard=owner, combine="sum", explain=explain
            )
        return self.query(
            "estimate_since", key, timestamp, combine="sum", explain=explain
        )

    def estimate_between(self, key, start, end, explain=False) -> float:
        """Back-in-time window estimate of ``key`` over ``[start, end]``.

        ``explain=True`` returns ``(estimate, plan)``.
        """
        owner = self._owner(key)
        if owner is not None:
            return self.query(
                "estimate_between", key, start, end, shard=owner, combine="sum", explain=explain
            )
        return self.query(
            "estimate_between", key, start, end, combine="sum", explain=explain
        )

    def total_weight_at(self, timestamp, explain=False) -> float:
        """Global stream weight at ``timestamp`` (sum across shards).

        ``explain=True`` returns ``(weight, plan)``.
        """
        return self.query(
            "total_weight_at", timestamp, combine="sum", explain=explain
        )

    def _combined_heavy_hitters(self, method: str, estimator, timestamp, threshold):
        candidates = self.query(method, timestamp, threshold, combine="union")
        if not candidates:
            return []
        if self._supports("total_weight_at") and method.endswith("_at"):
            total = self.total_weight_at(timestamp)
            if total > 0:
                return combine_heavy_hitters(
                    [candidates], estimator, threshold, total
                )
        return candidates

    def heavy_hitters_at(self, timestamp, threshold) -> list:
        """ATTP ``threshold``-heavy hitters at ``timestamp``.

        Per-shard candidates are unioned — recall-preserving for any
        partition, since a globally heavy key is heavy on at least one
        shard — then, when the substrate can re-estimate, re-thresholded
        against the *global* weight to discard shard-local noise.
        """
        return self._combined_heavy_hitters(
            "heavy_hitters_at",
            lambda key: self.estimate_at(key, timestamp),
            timestamp,
            threshold,
        )

    def heavy_hitters_since(self, timestamp, threshold) -> list:
        """BITP ``threshold``-heavy hitters over the suffix since ``timestamp``."""
        return self._combined_heavy_hitters(
            "heavy_hitters_since",
            lambda key: self.estimate_since(key, timestamp),
            timestamp,
            threshold,
        )

    def contains_at(self, key, timestamp, explain=False) -> bool:
        """ATTP membership: was ``key`` present in the prefix at ``timestamp``?

        ``explain=True`` returns ``(answer, plan)``.
        """
        owner = self._owner(key)
        if owner is not None:
            return self.query(
                "contains_at", key, timestamp, shard=owner, combine="any", explain=explain
            )
        return self.query(
            "contains_at", key, timestamp, combine="any", explain=explain
        )

    def contains_since(self, key, timestamp, explain=False) -> bool:
        """BITP membership over the suffix since ``timestamp``.

        ``explain=True`` returns ``(answer, plan)``.
        """
        owner = self._owner(key)
        if owner is not None:
            return self.query(
                "contains_since", key, timestamp, shard=owner, combine="any", explain=explain
            )
        return self.query(
            "contains_since", key, timestamp, combine="any", explain=explain
        )

    def merged_sketch_at(self, timestamp, explain=False):
        """Cross-shard merged snapshot at ``timestamp`` (read-only).

        ``explain=True`` returns ``(sketch, plan)``.
        """
        return self._coordinator.merged_sketch_at(timestamp, explain=explain)

    def merged_sketch_since(self, timestamp, explain=False):
        """Cross-shard merged suffix summary since ``timestamp`` (read-only).

        ``explain=True`` returns ``(sketch, plan)``.
        """
        return self._coordinator.merged_sketch_since(timestamp, explain=explain)

    def quantile_at(self, timestamp, phi) -> float:
        """ATTP ``phi``-quantile at ``timestamp`` via the merged snapshot."""
        return self.merged_sketch_at(timestamp).quantile(phi)

    def quantile_since(self, timestamp, phi) -> float:
        """BITP ``phi``-quantile over the suffix since ``timestamp``."""
        return self.merged_sketch_since(timestamp).quantile(phi)

    def cardinality_at(self, timestamp) -> float:
        """ATTP distinct-count estimate at ``timestamp`` (merged registers)."""
        return self.merged_sketch_at(timestamp).estimate()

    def cardinality_since(self, timestamp) -> float:
        """BITP distinct-count estimate over the suffix since ``timestamp``."""
        return self.merged_sketch_since(timestamp).estimate()

    # -- introspection -----------------------------------------------------

    def health(self) -> dict:
        """Liveness summary: shard states, queue depths, watermark lag.

        The payload the introspection server's ``/healthz`` endpoint
        serves; ``healthy`` is False — and the endpoint returns 503 — when
        any shard is not ``HEALTHY`` (poisoned, rebuilding, degraded, or
        circuit-open) or the service is closed.  ``shard_states`` reports
        the supervisor's per-shard state machine; without supervision a
        poisoned worker reports ``FAILED`` directly (poisoning is terminal
        there).  ``shard_backends`` names each shard's execution backend
        and, for the process backend, the worker child's PID (``null``
        for in-process thread shards) — a wedged or killed child is
        diagnosable from the endpoint alone.
        """
        failed = [
            worker.index for worker in self._workers if worker.failure is not None
        ]
        if self._supervisor is not None:
            states = {
                str(shard): state
                for shard, state in self._supervisor.states().items()
            }
        else:
            states = {
                str(worker.index): FAILED if worker.failure is not None else HEALTHY
                for worker in self._workers
            }
        acked = self._acked_seqno
        watermark = self.watermark()
        payload = {
            "healthy": (
                not self._closed
                and not failed
                and all(state == HEALTHY for state in states.values())
            ),
            "closed": self._closed,
            "failed_shards": failed,
            "shard_states": states,
            "shard_backends": {
                str(worker.index): {
                    "backend": worker.backend,
                    "pid": worker.pid,
                }
                for worker in self._workers
            },
            "queue_depths": {
                str(worker.index): worker.pending_items for worker in self._workers
            },
            "acked_seqno": acked,
            "watermark": watermark,
            "watermark_lag": acked - watermark,
            "staged_items": self._stage_items,
        }
        if self._supervisor is not None:
            payload["supervisor"] = self._supervisor.stats()
        return payload

    def attach_auditor(self, auditor) -> None:
        """Shadow-record every accepted ingest batch into ``auditor``.

        The :class:`~repro.telemetry.AccuracyAuditor` sees the exact
        arrays :meth:`ingest_batch` accepted, before routing — its
        ground truth is parent-side state, untouched by shard rebuilds.
        Also binds this service as the auditor's replay target.  Pass
        ``None`` to detach.
        """
        self._auditor = auditor
        if auditor is not None:
            auditor.bind(self)

    def serve_introspection(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        poller=None,
        alerts=None,
    ) -> IntrospectionServer:
        """Start an introspection HTTP server bound to this service.

        Serves ``/metrics``, ``/report``, ``/spans`` and ``/traces/<id>``
        from the process-global telemetry state and ``/healthz`` from
        :meth:`health` (503 while a shard is poisoned).  Returns the
        started :class:`~repro.telemetry.IntrospectionServer` — the caller
        owns its lifetime (``stop()`` it, or use it as a context manager);
        ``port=0`` binds an ephemeral port exposed as ``.port``.

        Under ``backend="process"`` each scrape first pulls the worker
        children's telemetry deltas (best-effort), so ``/metrics`` and
        ``/spans`` include child-side activity up to the scrape.

        ``poller`` (a started :class:`~repro.telemetry.MetricPoller`)
        adds ``/timeseries`` and ``/dashboard``; ``alerts`` (an
        :class:`~repro.telemetry.AlertEngine`) adds ``/alerts`` *and
        folds into* ``/healthz``: the payload gains an ``"alerts"``
        summary and turns 503 while any critical rule is firing — the
        same probe that catches a poisoned shard catches a blown SLO.
        The caller owns both objects' lifetimes.
        """

        def pull_children() -> None:
            for worker in self._workers:
                worker.pull_telemetry()

        health = self.health
        if alerts is not None:
            def health_with_alerts() -> dict:
                payload = self.health()
                summary = alerts.summary()
                payload["alerts"] = summary
                if summary["critical_firing"]:
                    payload["healthy"] = False
                return payload
            health = health_with_alerts

        return IntrospectionServer(
            host=host,
            port=port,
            health=health,
            on_scrape=pull_children,
            timeseries=poller.series if poller is not None else None,
            alerts=alerts.status if alerts is not None else None,
            dashboard=poller.dashboard_html if poller is not None else None,
        ).start()

    def cache_info(self) -> dict:
        """Coordinator answer-cache statistics."""
        return self._coordinator.cache_info()

    def resident_bytes(self, per_shard: bool = False):
        """Modelled resident bytes of the shard sketches (C-layout model).

        Fans ``memory_bytes()`` out to every shard *without* touching the
        answer cache (residency is not an answer: it changes between
        watermarks).  With ``per_shard=True`` returns the per-shard list
        instead of the sum.  The multi-tenant service's memory accounting
        and quota enforcement are built on this call.
        """
        sizes = [
            int(size)
            for size in self._coordinator.fanout("memory_bytes")
        ]
        return sizes if per_shard else sum(sizes)

    def stats(self) -> dict:
        """Service-wide snapshot: seqnos, per-shard progress, cache, drops."""
        shards = []
        for worker in self._workers:
            entry = {
                "shard": worker.index,
                "acked_seqno": worker.acked_seqno,
                "applied_seqno": worker.applied_seqno,
                "pending_items": worker.pending_items,
                "items_applied": worker.items_applied,
                "items_dropped": worker.items_dropped,
                "failed": worker.failure is not None,
            }
            entry["backend"] = worker.backend
            if self.durable and worker.failure is None:
                entry["durable"] = worker.store_stats()
            shards.append(entry)
        payload = {
            "num_shards": self.num_shards,
            "partition": self._router.mode,
            "acked_seqno": self._acked_seqno,
            "watermark": self.watermark(),
            "staged_items": self._stage_items,
            "durable": self.durable,
            "cache": self.cache_info(),
            "shards": shards,
        }
        if self._supervisor is not None:
            payload["supervisor"] = self._supervisor.stats()
        return payload
