"""Shard supervision: health states, live rebuilds, redirect buffers.

A sharded service without supervision treats any shard fault as terminal:
the worker is poisoned, every producer sees :class:`ShardFailedError`, and
the only remedy is tearing the whole service down.  The
:class:`ShardSupervisor` turns that into a *self-healing* loop built on the
durability layer's proof that a shard is exactly rebuildable from its
snapshot + WAL:

* a monitor thread watches every worker; a poisoned worker moves its shard
  through an explicit health state machine —

  ``HEALTHY → REBUILDING → (HEALTHY | DEGRADED → REBUILDING | FAILED)``

  where ``REBUILDING`` means a rebuild attempt is running right now,
  ``DEGRADED`` means the last attempt failed and the shard is waiting out
  an exponential backoff (with jitter) before retrying, and ``FAILED``
  means the circuit breaker opened after ``max_rebuilds`` attempts and the
  shard is parked as permanently failed;
* while a shard is down, routed sub-batches are **parked** in a bounded
  per-shard redirect buffer instead of failing the producer; on recovery
  they replay into the rebuilt worker in seqno order, so the service's
  read-your-writes watermark semantics survive failover unchanged;
* a rebuild salvages the poisoned worker's queue first (including a failed
  fused batch the worker pushed back because it verifiably never reached
  the WAL), recovers the shard's :class:`~repro.durability.DurableSketch`
  from disk, swaps the fresh worker into the service's worker table, and
  only flips the shard back to ``HEALTHY`` once the redirect buffer has
  fully drained.

The supervisor exports ``service_shard_state`` (gauge, one child per
shard, coded 0=HEALTHY 1=REBUILDING 2=DEGRADED 3=FAILED),
``service_rebuilds_total`` and ``service_redirected_items_total``, and
traces each attempt as ``service.rebuild`` / ``service.redirect_replay``
spans.  Shard states surface through
:meth:`repro.service.ShardedSketchService.health` and therefore through
the introspection server's ``/healthz`` (503 while any shard is not
``HEALTHY``).
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Callable, List, Optional, Sequence

from repro.service.worker import BackpressureError, ShardFailedError, ShardWorker
from repro.telemetry.registry import TELEMETRY as _TEL
from repro.telemetry.spans import span

#: Shard health states, in escalation order (the gauge codes them 0..3).
SHARD_STATES = ("HEALTHY", "REBUILDING", "DEGRADED", "FAILED")
HEALTHY, REBUILDING, DEGRADED, FAILED = SHARD_STATES
STATE_CODES = {name: code for code, name in enumerate(SHARD_STATES)}

_TEL.registry.declare(
    "service_shard_state",
    "gauge",
    "Per-shard health state code (0=HEALTHY 1=REBUILDING 2=DEGRADED 3=FAILED).",
)
_TEL.registry.declare(
    "service_rebuilds_total",
    "counter",
    "Completed in-place shard rebuilds (snapshot+WAL recovery + replay), by shard.",
)
_TEL.registry.declare(
    "service_redirected_items_total",
    "counter",
    "Items parked in a redirect buffer while their shard was down, by shard.",
)


class _ShardHealth:
    """Mutable supervision record for one shard (guarded by the park lock)."""

    __slots__ = (
        "state",
        "attempts",
        "rebuilds",
        "last_error",
        "next_retry_at",
        "abandoned_items",
        "dropped_items",
    )

    def __init__(self):
        self.state = HEALTHY
        self.attempts = 0  # rebuild attempts, lifetime (circuit-breaker input)
        self.rebuilds = 0  # attempts that completed and drained their replay
        self.last_error: Optional[BaseException] = None
        self.next_retry_at = 0.0
        self.abandoned_items = 0  # parked items lost to a FAILED circuit
        self.dropped_items = 0  # parked items shed by the drop policy


class ShardSupervisor:
    """Watches shard workers and rebuilds poisoned shards in place.

    Parameters
    ----------
    workers:
        The service's *live* worker list.  The supervisor swaps rebuilt
        workers into this list in place, so everything holding the list —
        the query coordinator, the watermark computation — observes the
        replacement without re-wiring.
    rebuild:
        ``rebuild(shard, old_worker) -> ShardWorker`` — recovers the
        shard's durable state from disk and returns a fresh, *unstarted*
        worker (the service supplies this; see
        ``ShardedSketchService._rebuild_worker``).  May raise anything —
        including :class:`~repro.durability.SimulatedCrash` under fault
        injection — and the supervisor treats the attempt as failed.
    can_rebuild:
        False for non-durable services: there is no snapshot+WAL to rebuild
        from, so a poisoned shard moves straight to ``FAILED`` (preserving
        the strict pre-supervision semantics).
    policy:
        Backpressure policy for a *full* redirect buffer, mirroring the
        worker queue policies: ``"block"`` waits up to ``redirect_timeout``
        then raises :class:`BackpressureError`; ``"drop"`` sheds and
        counts; ``"error"`` raises immediately.
    redirect_capacity:
        Maximum parked items per shard before the policy applies.
    redirect_timeout:
        Deadline (seconds) both for blocking park waits and for replay
        submissions into the rebuilt worker — a producer can never hang
        forever on a dead shard.
    max_rebuilds:
        Circuit breaker: after this many rebuild *attempts* the shard is
        parked as ``FAILED`` and its parked items are counted abandoned.
    backoff_base, backoff_factor, backoff_cap, jitter:
        Retry pacing between failed attempts: attempt ``k`` waits
        ``min(cap, base * factor**(k-1)) * (1 + jitter * U[0,1))`` seconds.
    poll_interval:
        Monitor wakeup period (failures also wake it immediately via
        :meth:`notify`).
    on_progress:
        Called (outside locks) after any state change or replay progress —
        the service wires its watermark condition here.
    seed:
        Seeds the jitter RNG (deterministic tests).
    """

    def __init__(
        self,
        workers: Sequence[ShardWorker],
        rebuild: Callable[[int, ShardWorker], ShardWorker],
        *,
        can_rebuild: bool = True,
        policy: str = "block",
        redirect_capacity: int = 1 << 16,
        redirect_timeout: Optional[float] = 10.0,
        max_rebuilds: int = 5,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_cap: float = 2.0,
        jitter: float = 0.5,
        poll_interval: float = 0.05,
        on_progress: Optional[Callable[[], None]] = None,
        seed: int = 0,
    ):
        if redirect_capacity < 1:
            raise ValueError(
                f"redirect_capacity must be >= 1, got {redirect_capacity}"
            )
        if max_rebuilds < 1:
            raise ValueError(f"max_rebuilds must be >= 1, got {max_rebuilds}")
        self._workers = workers  # shared, swapped in place
        self._rebuild = rebuild
        self.can_rebuild = can_rebuild
        self.policy = policy
        self.redirect_capacity = redirect_capacity
        self.redirect_timeout = redirect_timeout
        self.max_rebuilds = max_rebuilds
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.poll_interval = poll_interval
        self._on_progress = on_progress
        self._rng = random.Random(seed)
        num_shards = len(workers)
        self._health = [_ShardHealth() for _ in range(num_shards)]
        self._buffers: List[deque] = [deque() for _ in range(num_shards)]
        self._buffered_items = [0] * num_shards
        self._parked_acked = [0] * num_shards
        self._park_conds = [threading.Condition() for _ in range(num_shards)]
        self._cond = threading.Condition()
        self._stopping = False
        self._state_gauges = [
            _TEL.gauge("service_shard_state", shard=str(shard))
            for shard in range(num_shards)
        ]
        self._rebuild_counters = [
            _TEL.counter("service_rebuilds_total", shard=str(shard))
            for shard in range(num_shards)
        ]
        self._redirect_counters = [
            _TEL.counter("service_redirected_items_total", shard=str(shard))
            for shard in range(num_shards)
        ]
        self._thread = threading.Thread(
            target=self._run, name="shard-supervisor", daemon=True
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the monitor thread (idempotent once)."""
        self._thread.start()

    def stop(self) -> None:
        """Stop the monitor thread and join it (parked items stay parked)."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join()

    def notify(self) -> None:
        """Wake the monitor now (a producer just observed a shard failure)."""
        with self._cond:
            self._cond.notify_all()

    # -- state inspection --------------------------------------------------

    def state(self, shard: int) -> str:
        """Current health state of ``shard`` (one of :data:`SHARD_STATES`)."""
        return self._health[shard].state

    def states(self) -> dict:
        """``{shard: state}`` snapshot across all shards."""
        return {shard: h.state for shard, h in enumerate(self._health)}

    def parked_acked(self, shard: int) -> int:
        """Highest seqno acknowledged into ``shard``'s redirect buffer.

        A watermark floor input: parked items are acknowledged but not yet
        applied, so the service watermark must not advance past them.
        """
        return self._parked_acked[shard]

    def parked_items(self, shard: int) -> int:
        """Items currently parked for ``shard`` (snapshot; racy by nature)."""
        return self._buffered_items[shard]

    def stats(self) -> dict:
        """Per-shard supervision snapshot (for ``health()``/``stats()``)."""
        now = time.monotonic()
        payload = {}
        for shard, h in enumerate(self._health):
            payload[str(shard)] = {
                "state": h.state,
                "attempts": h.attempts,
                "rebuilds": h.rebuilds,
                "parked_items": self._buffered_items[shard],
                "abandoned_items": h.abandoned_items,
                "dropped_items": h.dropped_items,
                "last_error": None if h.last_error is None else repr(h.last_error),
                "retry_in": (
                    max(0.0, h.next_retry_at - now) if h.state == DEGRADED else 0.0
                ),
            }
        return payload

    # -- producer side: submit-or-park ------------------------------------

    def submit(self, shard: int, batch, seqno: int) -> int:
        """Route one sub-batch to ``shard``: direct when healthy, else park.

        ``batch`` is a :class:`~repro.core.StreamBatch` (parked and
        replayed as the same object — no copies on the failover path).
        Mirrors :meth:`ShardWorker.submit`'s contract (returns accepted
        items, honours the backpressure policy) but absorbs shard failure:
        a poisoned worker parks the sub-batch for replay instead of
        surfacing :class:`ShardFailedError` — unless the shard's circuit
        breaker is open (``FAILED``), which stays a hard error.
        """
        health = self._health[shard]
        while True:
            state = health.state
            if state == FAILED:
                raise ShardFailedError(
                    shard,
                    health.last_error
                    or RuntimeError("circuit breaker open (max rebuilds exhausted)"),
                )
            if state == HEALTHY:
                worker = self._workers[shard]
                try:
                    return worker.submit(batch, seqno)
                except ShardFailedError:
                    # poisoned between our state read and the submit: park
                    # and wake the monitor to begin the rebuild
                    self.notify()
            accepted = self._park(shard, batch, seqno)
            if accepted is not None:
                return accepted
            # the shard recovered while we waited to park: resubmit directly

    def _park(self, shard, batch, seqno) -> Optional[int]:
        """Park one sub-batch for later replay; None if the shard healed."""
        health = self._health[shard]
        n = len(batch)
        timeout = self.redirect_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        cond = self._park_conds[shard]
        with cond:
            while True:
                if health.state == FAILED:
                    raise ShardFailedError(
                        shard, health.last_error or RuntimeError("shard failed")
                    )
                if health.state == HEALTHY and self._workers[shard].failure is None:
                    return None  # healed: caller resubmits directly
                if (
                    self._buffered_items[shard] == 0
                    or self._buffered_items[shard] + n <= self.redirect_capacity
                ):
                    break
                if self.policy == "drop":
                    health.dropped_items += n
                    return 0
                if self.policy == "error":
                    raise BackpressureError(
                        f"shard {shard} redirect buffer full "
                        f"({self._buffered_items[shard]}/{self.redirect_capacity} "
                        f"items)"
                    )
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise BackpressureError(
                        f"shard {shard} redirect buffer still full after "
                        f"{timeout:g}s — blocking deadline expired"
                    )
                cond.wait(0.05 if remaining is None else min(remaining, 0.05))
            self._buffers[shard].append((batch, seqno))
            self._buffered_items[shard] += n
            if seqno > self._parked_acked[shard]:
                self._parked_acked[shard] = seqno
            if _TEL.enabled:
                self._redirect_counters[shard].inc(n)
        return n

    # -- monitor side ------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopping:
                    return
                self._cond.wait(self.poll_interval)
                if self._stopping:
                    return
            now = time.monotonic()
            for shard in range(len(self._workers)):
                try:
                    self._check(shard, now)
                except Exception as exc:  # supervision must outlive bugs
                    self._health[shard].last_error = exc
                    self._set_state(shard, FAILED)

    def _check(self, shard: int, now: float) -> None:
        health = self._health[shard]
        if health.state == HEALTHY:
            worker = self._workers[shard]
            if worker.failure is None:
                return
            health.last_error = worker.failure
            if not self.can_rebuild:
                # nothing durable to rebuild from: strict semantics apply
                self._abandon(shard)
                return
            if health.attempts >= self.max_rebuilds:
                # lifetime cap: a shard that keeps dying after successful
                # rebuilds trips the breaker just like failed attempts do
                self._abandon(shard)
                return
            self._set_state(shard, REBUILDING)
            self._attempt(shard)
        elif health.state == DEGRADED and now >= health.next_retry_at:
            self._set_state(shard, REBUILDING)
            self._attempt(shard)

    def _attempt(self, shard: int) -> None:
        """One rebuild attempt: salvage, recover, swap, replay, flip."""
        health = self._health[shard]
        old = self._workers[shard]
        salvaged = old.take_pending()
        if salvaged:
            cond = self._park_conds[shard]
            with cond:
                # the salvaged queue precedes everything parked later, in
                # seqno order (producers are serialised by the ingest lock)
                self._buffers[shard].extendleft(
                    (batch, seqno) for batch, seqno, _, _ in reversed(salvaged)
                )
                taken = sum(len(entry[0]) for entry in salvaged)
                self._buffered_items[shard] += taken
                top = max(entry[1] for entry in salvaged)
                if top > self._parked_acked[shard]:
                    self._parked_acked[shard] = top
        health.attempts += 1
        try:
            with span(
                "service.rebuild", shard=shard, attempt=health.attempts
            ) as rebuild_span:
                worker = self._rebuild(shard, old)
                self._install(shard, old, worker)
                with span("service.redirect_replay", shard=shard):
                    replayed = self._replay(shard)
                rebuild_span.set_attr("replayed_items", replayed)
        except (ShardFailedError, BackpressureError) as exc:
            health.last_error = exc
            self._after_failed_attempt(shard)
            return
        except BaseException as exc:  # noqa: BLE001 — includes SimulatedCrash
            # a crash/IO fault *inside* the rebuild: the directory is still
            # recoverable (that is the durability invariant), so this is a
            # retryable attempt failure, not corruption
            health.last_error = exc
            self._after_failed_attempt(shard)
            return
        health.rebuilds += 1
        if _TEL.enabled:
            self._rebuild_counters[shard].inc()
        self._progress()

    def _install(self, shard: int, old: ShardWorker, worker: ShardWorker) -> None:
        """Swap the rebuilt worker in with watermark-correct seqnos.

        Everything the old worker dequeued before failing was WAL-logged
        (log-then-apply) and is therefore part of the recovered state; what
        it had *not* dequeued — plus the pushed-back never-logged batch —
        now sits at the front of the redirect buffer.  So the rebuilt
        worker has applied exactly up to just before the first parked
        seqno (or everything acked, when nothing is parked).
        """
        with self._park_conds[shard]:
            buffer = self._buffers[shard]
            first_parked = buffer[0][1] if buffer else None
        worker.acked_seqno = old.acked_seqno
        worker.applied_seqno = (
            old.acked_seqno if first_parked is None else first_parked - 1
        )
        worker.items_applied = old.items_applied
        self._workers[shard] = worker
        worker.start()

    def _replay(self, shard: int) -> int:
        """Drain the redirect buffer into the rebuilt worker, then heal.

        The ``HEALTHY`` flip happens under the park lock with the buffer
        observed empty, and producers park under the same lock while the
        state is not ``HEALTHY`` — so no sub-batch can slip between the
        final drain and the flip, and seqno order is preserved end to end.
        """
        worker = self._workers[shard]
        cond = self._park_conds[shard]
        replayed = 0
        while True:
            with cond:
                if not self._buffers[shard]:
                    self._set_state_locked(shard, HEALTHY)
                    cond.notify_all()
                    return replayed
                entries = list(self._buffers[shard])
                self._buffers[shard].clear()
                self._buffered_items[shard] = 0
                cond.notify_all()  # room for blocked parkers
            for position, (batch, seqno) in enumerate(entries):
                try:
                    worker.submit(batch, seqno, timeout=self.redirect_timeout)
                    replayed += len(batch)
                except (ShardFailedError, BackpressureError):
                    with cond:
                        rest = entries[position:]
                        self._buffers[shard].extendleft(reversed(rest))
                        self._buffered_items[shard] += sum(
                            len(entry[0]) for entry in rest
                        )
                    raise
            self._progress()

    def _after_failed_attempt(self, shard: int) -> None:
        health = self._health[shard]
        if health.attempts >= self.max_rebuilds:
            self._abandon(shard)
            return
        delay = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (health.attempts - 1),
        )
        delay *= 1.0 + self.jitter * self._rng.random()
        health.next_retry_at = time.monotonic() + delay
        self._set_state(shard, DEGRADED)

    def _abandon(self, shard: int) -> None:
        """Open the circuit: park the shard as permanently failed."""
        health = self._health[shard]
        with self._park_conds[shard]:
            health.abandoned_items += self._buffered_items[shard]
            self._buffers[shard].clear()
            self._buffered_items[shard] = 0
            self._set_state_locked(shard, FAILED)
            self._park_conds[shard].notify_all()
        self._progress()

    def _set_state(self, shard: int, state: str) -> None:
        with self._park_conds[shard]:
            self._set_state_locked(shard, state)
            self._park_conds[shard].notify_all()
        self._progress()

    def _set_state_locked(self, shard: int, state: str) -> None:
        self._health[shard].state = state
        if _TEL.enabled:
            self._state_gauges[shard].set(STATE_CODES[state])

    def _progress(self) -> None:
        if self._on_progress is not None:
            self._on_progress()
