"""Shard routing: deterministic placement of stream items onto shards.

Two placement modes, matching the two kinds of substrate sketch:

``"hash"``
    Key-partitioning for key-addressed sketches (CountMin, Misra-Gries,
    SpaceSaving, Bloom, dyadic).  Every occurrence of a key lands on the
    same shard, so the owning shard's estimate *is* the global estimate —
    point queries need no cross-shard noise summation, and heavy-hitter
    recall is exact per shard.  The hash is a fixed splitmix64 finalizer
    (seeded), so placement is reproducible across runs and across the
    scalar/batch paths — a requirement for durable recovery, where keys
    must keep routing to the shard that owns their history.

``"round_robin"``
    Item-count balancing for key-agnostic sketches (HLL, KLL, reservoir
    and priority samples).  Items cycle through shards in arrival order;
    every shard sees an arbitrary (not hash-biased) sub-stream, which is
    exactly what mergeable-summary guarantees require.

Both modes partition batches *stably*: each shard receives its items in
arrival order, so a timestamp-monotone input stream stays monotone within
every shard.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.batch import StreamBatch

_MASK = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

PARTITION_MODES = ("hash", "round_robin")


def _splitmix64(x: int) -> int:
    """Scalar splitmix64 finalizer over Python ints (64-bit wrapping)."""
    x = (x + _GAMMA) & _MASK
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK
    return x ^ (x >> 31)


def _splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64, bit-identical to :func:`_splitmix64`."""
    x = (x + np.uint64(_GAMMA)).astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


class ShardRouter:
    """Maps stream items to shard indices, scalar or batched.

    Parameters
    ----------
    num_shards:
        Number of shards ``K >= 1``.
    mode:
        ``"hash"`` (key partitioning) or ``"round_robin"``.
    seed:
        Hash-mode seed folded into the key before mixing.  Must be stable
        across restarts of a durable service (persisted in the manifest).
    """

    def __init__(self, num_shards: int, mode: str = "hash", seed: int = 0):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if mode not in PARTITION_MODES:
            raise ValueError(f"mode must be one of {PARTITION_MODES}, got {mode!r}")
        self.num_shards = num_shards
        self.mode = mode
        self.seed = seed
        self._salt = _splitmix64(seed & _MASK)
        self._next = 0  # round-robin cursor; caller serialises ingest

    def route(self, value) -> int:
        """Shard index for one item (advances the round-robin cursor)."""
        if self.mode == "round_robin":
            shard = self._next
            self._next = (self._next + 1) % self.num_shards
            return shard
        return _splitmix64((int(value) ^ self._salt) & _MASK) % self.num_shards

    def shards_of(self, values) -> np.ndarray:
        """Vectorised shard index per item (agrees with :meth:`route`)."""
        values = np.asarray(values)
        n = int(values.size)
        if self.mode == "round_robin":
            shards = (np.arange(self._next, self._next + n) % self.num_shards).astype(
                np.int64
            )
            self._next = (self._next + n) % self.num_shards
            return shards
        keys = values.astype(np.int64).view(np.uint64) ^ np.uint64(self._salt)
        return (_splitmix64_array(keys) % np.uint64(self.num_shards)).astype(np.int64)

    def split(self, batch: StreamBatch) -> List[Optional[StreamBatch]]:
        """Split one :class:`~repro.core.StreamBatch` across the shards.

        Returns a list of ``num_shards`` entries, each ``None`` (shard got
        nothing) or a sub-``StreamBatch`` holding that shard's items in
        arrival order.  Splits are array *index slices*, not list copies:

        * a single shard gets the batch object back unchanged;
        * round-robin sub-streams are strided views of the parent arrays
          (``np.shares_memory`` holds — zero copies);
        * hash mode pays exactly one stable sort per array, after which
          every shard's sub-batch is a contiguous slice of (and shares
          memory with) the sorted copy.
        """
        n = len(batch)
        if n == 0:
            return [None] * self.num_shards
        if self.num_shards == 1:
            return [batch]
        if self.mode == "round_robin":
            # round-robin sub-streams are strided views: shard s gets items
            # s - cursor (mod K), s - cursor + K, ... in arrival order
            start = self._next
            self._next = (self._next + n) % self.num_shards
            return [
                batch.take(slice(offset, None, self.num_shards))
                if (offset := (shard - start) % self.num_shards) < n
                else None
                for shard in range(self.num_shards)
            ]
        # hash mode: one stable sort groups each shard's items contiguously
        # (and in arrival order), so per-shard sub-batches are plain slices
        shards = self.shards_of(batch.values)
        order = np.argsort(shards, kind="stable")
        grouped = batch.take(order)
        bounds = np.searchsorted(shards[order], np.arange(self.num_shards + 1))
        return [
            grouped.take(slice(lo, hi)) if lo < hi else None
            for lo, hi in zip(bounds[:-1].tolist(), bounds[1:].tolist())
        ]

    def partition(self, values, timestamps, weights=None) -> list:
        """Split a batch into per-shard ``(values, timestamps, weights)``.

        The legacy triple-form wrapper around :meth:`split` (validating
        via :meth:`StreamBatch.from_arrays`): returns a list of
        ``num_shards`` entries, each ``None`` (shard got nothing) or a
        triple of NumPy arrays holding that shard's items in arrival
        order.  Weights is ``None`` throughout when the caller passed
        none.
        """
        parts = self.split(StreamBatch.from_arrays(values, timestamps, weights))
        return [None if part is None else part.astuple() for part in parts]
