"""Sharded concurrent ingest + query service for persistent sketches.

Every structure in :mod:`repro.core` is mergeable, which is exactly the
property that lets a service fan one logical stream out across ``K`` shards
and still answer with single-sketch guarantees: per-shard summaries of
disjoint sub-streams merge into a summary of the whole stream (Agarwal et
al., 2013 — the same architecture Hokusai uses for time-indexed CountMin).
This package is that layer:

* :class:`ShardRouter` — deterministic hash partitioning by key, or
  round-robin for key-agnostic sketches;
* :class:`ShardWorker` — one thread + bounded queue + private sketch per
  shard, draining queues into fused ``update_batch`` applies, with
  block / drop / error backpressure;
* :class:`QueryCoordinator` — fan-out, cross-shard combining via
  :mod:`repro.core.combine`, and a watermark-keyed LRU answer cache;
* :class:`ShardedSketchService` — the facade: lifecycle, global seqnos and
  the ingest watermark (read-your-writes), typed ATTP/BITP queries, and
  optional per-shard :class:`~repro.durability.DurableSketch` wrapping with
  a topology manifest for full-service crash recovery.

See docs/SERVICE.md for architecture, consistency semantics, backpressure
policies, and sizing guidance.
"""

from repro.service.coordinator import COMBINERS, QueryCoordinator
from repro.service.explain import PLAN_HOOKS, QueryPlan, ShardPlan, shard_plan_details
from repro.service.router import PARTITION_MODES, ShardRouter
from repro.service.service import IngestReceipt, ShardedSketchService
from repro.service.worker import (
    BACKPRESSURE_POLICIES,
    BackpressureError,
    ShardFailedError,
    ShardWorker,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BackpressureError",
    "COMBINERS",
    "IngestReceipt",
    "PARTITION_MODES",
    "PLAN_HOOKS",
    "QueryCoordinator",
    "QueryPlan",
    "ShardFailedError",
    "ShardPlan",
    "ShardRouter",
    "ShardWorker",
    "ShardedSketchService",
    "shard_plan_details",
]
