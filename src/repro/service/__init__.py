"""Sharded concurrent ingest + query service for persistent sketches.

Every structure in :mod:`repro.core` is mergeable, which is exactly the
property that lets a service fan one logical stream out across ``K`` shards
and still answer with single-sketch guarantees: per-shard summaries of
disjoint sub-streams merge into a summary of the whole stream (Agarwal et
al., 2013 — the same architecture Hokusai uses for time-indexed CountMin).
This package is that layer:

* :class:`ShardRouter` — deterministic hash partitioning by key, or
  round-robin for key-agnostic sketches;
* :class:`ShardWorker` — one thread + bounded queue + private sketch per
  shard, draining queues into fused ``update_batch`` applies, with
  block / drop / error backpressure (deadline-bounded via
  ``block_timeout``);
* :class:`ProcessShardWorker` — the ``backend="process"`` worker: same
  queueing contract, but the shard's sketch lives in a dedicated forked
  worker process, fused batches ship through pooled shared memory, and
  reads travel over a framed pickle RPC — shards run truly in parallel
  (see :data:`SHARD_BACKENDS` and docs/SCALING.md);
* :class:`QueryCoordinator` — fan-out, cross-shard combining via
  :mod:`repro.core.combine`, a watermark-keyed LRU answer cache, per-shard
  call timeouts, and ``partial="allow"`` degraded answers carrying an
  :class:`ErrorCertificate`;
* :class:`ShardSupervisor` — self-healing: watches workers, rebuilds a
  poisoned shard in place from its snapshot+WAL while parking its traffic
  in a redirect buffer, with backoff, a circuit breaker, and a per-shard
  ``HEALTHY → REBUILDING → DEGRADED → FAILED`` state machine;
* :class:`ChaosController` / :class:`ChaosFilesystem` /
  :func:`run_chaos_soak` — the service-level chaos harness: kill / slow /
  wedge injectors plus rate-based WAL faults, driving soak runs that
  assert exact recovery;
* :class:`ShardedSketchService` — the facade: lifecycle, global seqnos and
  the ingest watermark (read-your-writes), typed ATTP/BITP queries, and
  optional per-shard :class:`~repro.durability.DurableSketch` wrapping with
  a topology manifest for full-service crash recovery;
* :class:`MultiTenantService` / :class:`TenantRegistry` — the tenancy
  layer: many independently-budgeted sketch families under one memory
  envelope, with per-tenant :class:`TenantQuota` enforcement
  (:class:`TokenBucket` rates, resident-byte ceilings,
  :class:`TenantQuotaError` rejects), LRU cold-tenant spill/reload
  through the durability path, a shared tenant-partitioned
  :class:`AnswerCache`, and :class:`TenantLabelGuard`-bounded per-tenant
  metrics (see docs/TENANCY.md).

See docs/SERVICE.md for architecture, consistency semantics, backpressure
policies, failure handling / degraded mode, and sizing guidance.
"""

from repro.service.backend import SHARD_BACKENDS
from repro.service.chaos import (
    CHAOS_KINDS,
    ChaosController,
    ChaosEvent,
    ChaosFilesystem,
    ChaosSketch,
    random_schedule as random_chaos_schedule,
    run_soak as run_chaos_soak,
)
from repro.service.coordinator import (
    AnswerCache,
    COMBINERS,
    PARTIAL_POLICIES,
    QueryCoordinator,
    ShardTimeoutError,
)
from repro.service.explain import (
    ErrorCertificate,
    PLAN_HOOKS,
    QueryPlan,
    ShardPlan,
    shard_plan_details,
)
from repro.service.proc_worker import ProcessShardWorker
from repro.service.quotas import (
    QUOTA_REASONS,
    TenantQuota,
    TenantQuotaError,
    TokenBucket,
    UNLIMITED_QUOTA,
)
from repro.service.router import PARTITION_MODES, ShardRouter
from repro.service.service import IngestReceipt, ShardedSketchService
from repro.service.supervisor import SHARD_STATES, ShardSupervisor
from repro.service.tenancy import (
    MultiTenantService,
    OTHER_LABEL,
    TENANT_MEMORY_PREFIX,
    TenantLabelGuard,
    TenantReceipt,
    TenantRegistry,
    UnknownTenantError,
)
from repro.service.worker import (
    BACKPRESSURE_POLICIES,
    BackpressureError,
    ShardFailedError,
    ShardWorker,
)

__all__ = [
    "AnswerCache",
    "BACKPRESSURE_POLICIES",
    "BackpressureError",
    "CHAOS_KINDS",
    "COMBINERS",
    "ChaosController",
    "ChaosEvent",
    "ChaosFilesystem",
    "ChaosSketch",
    "ErrorCertificate",
    "IngestReceipt",
    "MultiTenantService",
    "OTHER_LABEL",
    "PARTIAL_POLICIES",
    "PARTITION_MODES",
    "PLAN_HOOKS",
    "ProcessShardWorker",
    "QUOTA_REASONS",
    "QueryCoordinator",
    "QueryPlan",
    "SHARD_BACKENDS",
    "SHARD_STATES",
    "ShardFailedError",
    "ShardPlan",
    "ShardRouter",
    "ShardSupervisor",
    "ShardTimeoutError",
    "ShardWorker",
    "ShardedSketchService",
    "TENANT_MEMORY_PREFIX",
    "TenantLabelGuard",
    "TenantQuota",
    "TenantQuotaError",
    "TenantReceipt",
    "TenantRegistry",
    "TokenBucket",
    "UNLIMITED_QUOTA",
    "UnknownTenantError",
    "random_chaos_schedule",
    "run_chaos_soak",
    "shard_plan_details",
]
