"""Process-backend plumbing: framed pipe RPC and shared-memory shipping.

Two transports, one per payload shape:

* **Control plane** — a length-prefixed pickle protocol over plain
  ``os.pipe`` file descriptors.  Every frame is ``4-byte big-endian
  length`` + ``pickle((request_id, op, payload))``; the parent tags each
  request with a fresh id and a receiver thread matches replies back to
  the waiting caller, so queries can overlap an in-flight batch apply on
  the same channel pair.  The child end is strictly sequential: one
  command in, one reply out, which is what gives the process backend the
  same apply-vs-read serialisation the thread backend gets from the shard
  apply lock.

* **Data plane** — fused :class:`~repro.core.StreamBatch` payloads cross
  the boundary as ``multiprocessing.shared_memory`` blocks.  The parent
  copies the batch's columns once into a pooled segment (the same single
  copy the thread backend pays to fuse), the control frame carries only a
  small descriptor (segment name, per-column dtype/shape/offset), and the
  child maps the columns back as **zero-copy NumPy views** of the shared
  pages.  Segments are ref-counted and recycled: released back to the
  pool at apply-ack time and reused for the next fused batch, so a
  steady-state shard ships arbitrarily many batches through one or two
  segments.  Object-dtype columns (arbitrary picklables) cannot be
  expressed as a flat buffer and fall back to travelling inline in the
  control frame.

Fork hygiene: parent-side fds are tracked in a registry snapshot so each
freshly forked child can close every descriptor that belongs to the
parent (or to sibling shards) before serving; segments attached by name
in the child skip stdlib resource-tracker registration (the parent, as
creator, is the sole owner of the tracker entry and of the unlink).
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.batch import StreamBatch

_LENGTH = struct.Struct(">I")

#: Byte alignment of each column inside a shared segment (cache line).
_ALIGN = 64


class ChannelClosed(RuntimeError):
    """The peer end of an RPC channel is gone (dead or exited child)."""


class RpcTimeout(RuntimeError):
    """An RPC reply did not arrive within the caller's deadline."""


def _read_exact(fd: int, n: int) -> bytes:
    chunks = []
    while n:
        try:
            chunk = os.read(fd, n)
        except OSError as exc:
            raise ChannelClosed(f"pipe read failed: {exc}") from exc
        if not chunk:
            raise ChannelClosed("pipe closed by peer")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


class FramedPipe:
    """One direction of a length-prefixed pickle stream over a pipe fd pair.

    ``send`` is serialised by a lock (the parent writes from shipper,
    query, and lifecycle threads concurrently); ``recv`` has a single
    consumer by construction (the parent's receiver thread, or the
    child's serve loop).
    """

    def __init__(self, read_fd: Optional[int], write_fd: Optional[int]):
        self._read_fd = read_fd
        self._write_fd = write_fd
        self._send_lock = threading.Lock()
        self._closed = False

    def send(self, frame: Any) -> None:
        """Pickle ``frame`` and write it as one length-prefixed message."""
        payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        header = _LENGTH.pack(len(payload))
        with self._send_lock:
            if self._closed or self._write_fd is None:
                raise ChannelClosed("channel closed locally")
            try:
                os.write(self._write_fd, header + payload)
            except (OSError, BrokenPipeError) as exc:
                raise ChannelClosed(f"pipe write failed: {exc}") from exc

    def recv(self) -> Any:
        """Read one frame; raises :class:`ChannelClosed` on EOF."""
        if self._read_fd is None:
            raise ChannelClosed("channel has no read end")
        header = _read_exact(self._read_fd, _LENGTH.size)
        (length,) = _LENGTH.unpack(header)
        return pickle.loads(_read_exact(self._read_fd, length))

    def close(self) -> None:
        """Close both fds (idempotent)."""
        with self._send_lock:
            self._closed = True
        for fd in (self._read_fd, self._write_fd):
            if fd is not None:
                discard_parent_fd(fd)
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._read_fd = self._write_fd = None


#: Parent-side fds a forked child must close before serving (fd numbers;
#: mutated only in the parent, snapshotted by fork).
_PARENT_FDS: set = set()
_PARENT_FDS_LOCK = threading.Lock()


def register_parent_fds(*fds: int) -> None:
    """Record parent-side fds so later-forked children can close them."""
    with _PARENT_FDS_LOCK:
        _PARENT_FDS.update(fds)


def discard_parent_fd(fd: int) -> None:
    """Forget a parent-side fd (call before closing it in the parent)."""
    with _PARENT_FDS_LOCK:
        _PARENT_FDS.discard(fd)


def close_inherited_parent_fds(keep: Tuple[int, ...] = ()) -> None:
    """In a fresh child: close every inherited parent-side fd.

    The forked child's fd table contains the parent ends of its own
    channel pair plus those of every sibling shard forked earlier; holding
    them open would keep dead siblings' pipes from ever reporting EOF.
    """
    for fd in list(_PARENT_FDS):
        if fd in keep:
            continue
        try:
            os.close(fd)
        except OSError:
            pass
    _PARENT_FDS.clear()


class _Future:
    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: Optional[BaseException] = None


class RpcClient:
    """Parent-side RPC endpoint: tagged requests, threaded reply dispatch.

    A daemon receiver thread reads reply frames and resolves the pending
    future with the matching request id; EOF fails every outstanding and
    future call with :class:`ChannelClosed` — the parent's signal that the
    child process died.  ``on_dead`` (optional) is invoked once, from the
    receiver thread, when that EOF arrives: it is how an *idle* child's
    death (nothing in flight, nothing about to call) gets noticed at all.
    """

    def __init__(self, pipe: FramedPipe, name: str = "rpc", on_dead=None):
        self._pipe = pipe
        self._pending: Dict[int, _Future] = {}
        self._lock = threading.Lock()
        self._next_id = 1
        self._dead: Optional[ChannelClosed] = None
        self._on_dead = on_dead
        self._receiver = threading.Thread(
            target=self._recv_loop, name=f"{name}-recv", daemon=True
        )
        self._receiver.start()

    def _recv_loop(self) -> None:
        while True:
            try:
                req_id, _op, payload = self._pipe.recv()
            except (ChannelClosed, EOFError, pickle.UnpicklingError) as exc:
                dead = (
                    exc
                    if isinstance(exc, ChannelClosed)
                    else ChannelClosed(f"reply stream corrupt: {exc}")
                )
                with self._lock:
                    self._dead = dead
                    pending, self._pending = self._pending, {}
                for future in pending.values():
                    future.error = dead
                    future.event.set()
                if self._on_dead is not None:
                    try:
                        self._on_dead(dead)
                    except Exception:  # noqa: BLE001 — detection best-effort
                        pass
                return
            with self._lock:
                future = self._pending.pop(req_id, None)
            if future is not None:  # None: caller timed out and moved on
                future.value = payload
                future.event.set()

    @property
    def dead(self) -> Optional[ChannelClosed]:
        """The channel-death error, once the peer is gone (else None)."""
        return self._dead

    def call(self, op: str, payload: Any = None, timeout: Optional[float] = None):
        """Send one request and wait for its reply.

        Raises :class:`RpcTimeout` when ``timeout`` (seconds) expires
        first — the request stays with the child, only the wait is
        abandoned — and :class:`ChannelClosed` when the peer is gone.
        """
        future = _Future()
        with self._lock:
            if self._dead is not None:
                raise self._dead
            req_id = self._next_id
            self._next_id += 1
            self._pending[req_id] = future
        try:
            self._pipe.send((req_id, op, payload))
        except ChannelClosed:
            with self._lock:
                self._pending.pop(req_id, None)
            raise
        if not future.event.wait(timeout):
            with self._lock:
                self._pending.pop(req_id, None)
            raise RpcTimeout(f"no reply to {op!r} within {timeout:g}s")
        if future.error is not None:
            raise future.error
        return future.value

    def close(self) -> None:
        """Close the underlying pipe and join the receiver thread."""
        self._pipe.close()
        if self._receiver.is_alive() and self._receiver is not threading.current_thread():
            self._receiver.join(timeout=5.0)


# -- shared-memory segments -------------------------------------------------


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    # Attach-by-name without resource-tracker registration.  Forked
    # children share the parent's tracker process; letting the attach
    # register (as 3.11's SharedMemory unconditionally does) and then
    # unregistering would *remove* the creator's entry from the shared
    # tracker — the parent's later unlink then trips a KeyError in the
    # tracker.  Suppressing the registration (the 3.13 ``track=False``
    # semantics) leaves the creator as sole owner of the accounting.
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class _Segment:
    __slots__ = ("shm", "size", "refs")

    def __init__(self, shm: shared_memory.SharedMemory):
        self.shm = shm
        self.size = shm.size
        self.refs = 0


def _round_size(nbytes: int) -> int:
    size = 1 << 16
    while size < nbytes:
        size <<= 1
    return size


class SegmentPool:
    """Parent-side pool of reusable, ref-counted shared-memory segments.

    ``acquire(nbytes)`` hands back a free segment at least that large
    (creating one, sized to the next power of two, when none fits) with
    its refcount at 1; ``release`` returns it to the free list at zero.
    The pool owns the unlink: :meth:`close` unmaps and removes every
    segment it ever created, so a clean service shutdown leaves nothing
    in ``/dev/shm``.
    """

    def __init__(self):
        self._segments: Dict[str, _Segment] = {}
        self._free: list = []
        self._lock = threading.Lock()
        self.created = 0
        self.recycled = 0

    def acquire(self, nbytes: int) -> _Segment:
        """A segment with ``size >= nbytes`` and refcount 1."""
        with self._lock:
            for index, segment in enumerate(self._free):
                if segment.size >= nbytes:
                    del self._free[index]
                    segment.refs = 1
                    self.recycled += 1
                    return segment
            shm = shared_memory.SharedMemory(create=True, size=_round_size(nbytes))
            segment = _Segment(shm)
            segment.refs = 1
            self._segments[shm.name] = segment
            self.created += 1
            return segment

    def addref(self, name: str) -> None:
        """Take one extra reference on a held segment."""
        with self._lock:
            self._segments[name].refs += 1

    def release(self, name: str) -> None:
        """Drop one reference; at zero the segment rejoins the free list."""
        with self._lock:
            segment = self._segments.get(name)
            if segment is None:
                return
            segment.refs -= 1
            if segment.refs <= 0:
                segment.refs = 0
                self._free.append(segment)

    def stats(self) -> dict:
        """Pool occupancy counters (segments live/free, created/recycled)."""
        with self._lock:
            return {
                "segments": len(self._segments),
                "free": len(self._free),
                "created": self.created,
                "recycled": self.recycled,
                "bytes": sum(s.size for s in self._segments.values()),
            }

    def close(self) -> None:
        """Unmap and unlink every segment this pool created (idempotent)."""
        with self._lock:
            segments, self._segments = self._segments, {}
            self._free = []
        for segment in segments.values():
            try:
                segment.shm.close()
            except Exception:
                pass
            try:
                segment.shm.unlink()
            except Exception:
                pass


class ChildSegmentCache:
    """Child-side map of segment name → attached ``SharedMemory``.

    Attach-by-name happens once per segment; because the parent recycles
    a small pool, a long-lived child touches the attach path only a
    handful of times, then serves every later batch from the cached
    mapping — keeping the consumer side zero-copy and syscall-free.
    """

    def __init__(self):
        self._attached: Dict[str, shared_memory.SharedMemory] = {}

    def get(self, name: str) -> shared_memory.SharedMemory:
        """The attached segment for ``name``, attaching on first use."""
        shm = self._attached.get(name)
        if shm is None:
            shm = _attach_untracked(name)
            self._attached[name] = shm
        return shm

    def close(self) -> None:
        """Unmap every attached segment (the parent owns the unlink)."""
        for shm in self._attached.values():
            try:
                shm.close()
            except Exception:
                pass
        self._attached.clear()


# -- StreamBatch <-> shared memory ------------------------------------------


def _shippable(array: Optional[np.ndarray]) -> bool:
    return array is None or array.dtype != object


def encode_batch(batch: StreamBatch, pool: SegmentPool) -> dict:
    """Write ``batch`` into a pooled segment; returns its wire descriptor.

    The descriptor is small (names, dtypes, shapes, offsets) and travels
    in the control frame; the column payloads travel through the shared
    segment.  Object-dtype columns cannot be flattened into a buffer, so
    such a batch ships inline (``kind="inline"``) — correct, just not
    zero-copy.  The caller owns the returned segment reference and must
    :meth:`SegmentPool.release` it once the consumer acked.
    """
    columns = [("values", batch.values), ("timestamps", batch.timestamps)]
    if batch.weights is not None:
        columns.append(("weights", batch.weights))
    if not all(_shippable(array) for _, array in columns):
        return {"kind": "inline", "batch": batch}
    layout = []
    offset = 0
    for name, array in columns:
        array = np.ascontiguousarray(array)
        offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
        layout.append((name, array, offset))
        offset += array.nbytes
    segment = pool.acquire(max(offset, 1))
    fields = []
    for name, array, start in layout:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.shm.buf, offset=start
        )
        np.copyto(view, array)
        fields.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": array.shape,
                "offset": start,
            }
        )
    return {
        "kind": "shm",
        "segment": segment.shm.name,
        "fields": fields,
        "items": len(batch),
    }


def decode_batch(descriptor: dict, cache: ChildSegmentCache) -> StreamBatch:
    """Rebuild a :class:`StreamBatch` from a wire descriptor (child side).

    ``shm`` descriptors map each column as a read-only NumPy view of the
    shared segment — no bytes are copied; the batch borrows the parent's
    pages until the apply finishes and the ack releases the segment.
    """
    if descriptor["kind"] == "inline":
        return descriptor["batch"]
    shm = cache.get(descriptor["segment"])
    arrays = {}
    for field in descriptor["fields"]:
        view = np.ndarray(
            field["shape"],
            dtype=np.dtype(field["dtype"]),
            buffer=shm.buf,
            offset=field["offset"],
        )
        view.flags.writeable = False
        arrays[field["name"]] = view
    return StreamBatch(
        arrays["values"], arrays["timestamps"], arrays.get("weights")
    )
