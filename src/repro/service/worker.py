"""Per-shard ingest workers: bounded queues, batch draining, backpressure.

Each :class:`ShardWorker` owns one sketch instance (plain, persistent, or
:class:`~repro.durability.DurableSketch`) and one daemon thread.  Producers
:meth:`submit` routed sub-batches; the worker drains *everything* pending on
each wakeup, fuses the sub-batches into one array, and applies them through
:func:`repro.core.apply_stream_batch` — the same replay-identical dispatch
the WAL uses, so a durable shard logs one ``BATCH`` record per fused apply.
This queue-coalescing is where the service's throughput comes from: arrival
batches of a few hundred items fuse into applies of tens of thousands,
amortising the per-batch fixed costs of the chain/sketch fast paths.

Backpressure when the bounded queue is full is configurable:

* ``"block"`` (default) — the producer waits for the worker to drain; with
  ``block_timeout`` (constructor) or ``timeout=`` (per submit) the wait has
  a deadline and raises :class:`BackpressureError` on expiry, so a producer
  can never hang forever on a wedged or dead shard;
* ``"drop"`` — the sub-batch is discarded and counted
  (``service_backpressure_drops_total``);
* ``"error"`` — :class:`BackpressureError` is raised to the producer.

A worker that hits an ingest error (monotonicity violation, injected I/O
fault, simulated crash) is *poisoned*: it stops, keeps the original
exception, and every later submit/overlapping wait surfaces it as
:class:`ShardFailedError` — no silent partial ingest.  Poisoning preserves
evidence for failover: queued-but-unapplied sub-batches stay on the queue
(:meth:`ShardWorker.take_pending` hands them to a supervisor), and the
fused batch that failed is pushed back onto the queue front whenever it
verifiably never reached a durable shard's WAL — a rebuilt shard can then
replay everything that was acknowledged but not yet made durable.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Optional

from repro.core.base import apply_stream_batch
from repro.core.batch import StreamBatch
from repro.service.backend import mark_shard_backend
from repro.service.explain import shard_plan_details
from repro.telemetry.registry import TELEMETRY as _TEL
from repro.telemetry.spans import current_trace, record_span, span

BACKPRESSURE_POLICIES = ("block", "drop", "error")

# Declared at import time so the docs-catalog lint sees the families even
# before a service exists; per-shard children bind at worker construction.
_TEL.registry.declare(
    "service_ingest_items_total",
    "counter",
    "Items applied to shard sketches by ingest workers, by shard.",
)
_TEL.registry.declare(
    "service_ingest_batches_total",
    "counter",
    "Fused batch applies performed by ingest workers, by shard.",
)
_TEL.registry.declare(
    "service_queue_depth",
    "gauge",
    "Items currently queued ahead of a shard's worker, by shard.",
)
_TEL.registry.declare(
    "service_backpressure_drops_total",
    "counter",
    "Items dropped by the drop backpressure policy, by shard.",
)
_TEL.registry.declare(
    "service_queue_wait_seconds",
    "histogram",
    "Enqueue-to-drain latency of queued ingest sub-batches, by shard.",
)


class BackpressureError(RuntimeError):
    """Raised by the ``"error"`` policy when a shard queue is full."""


class ShardFailedError(RuntimeError):
    """A shard worker died mid-ingest; the original exception is chained."""

    def __init__(self, shard: int, cause: BaseException):
        super().__init__(f"shard {shard} failed during ingest: {cause!r}")
        self.shard = shard
        self.cause = cause


class ShardTimeoutError(RuntimeError):
    """A per-shard query read did not complete within its deadline.

    Thread backend: the shard's apply lock was not acquired in time (a
    wedged or very slow fused apply holds it).  Process backend: the
    worker child did not answer the query RPC in time.  Either way the
    shard is *slow*, not known-dead — under ``partial="allow"`` the
    coordinator certifies it missing with reason ``"timeout"``.
    """

    def __init__(self, shard: int, timeout: float):
        super().__init__(
            f"shard {shard} query did not complete within {timeout:g}s"
        )
        self.shard = shard
        self.timeout = timeout


class ShardWorker:
    """One shard: a private sketch, a bounded queue, and an apply thread.

    Parameters
    ----------
    index:
        Shard number (used for telemetry labels and error messages).
    sketch:
        The shard's private sketch — anything :func:`apply_stream_batch`
        accepts, including a ``DurableSketch`` wrapper.
    capacity:
        Maximum queued *items* (not sub-batches) before backpressure.
    policy:
        One of ``"block"``, ``"drop"``, ``"error"``.
    max_drain_items:
        Cap on items fused into a single apply, bounding both latency and
        the size of a durable shard's WAL ``BATCH`` record.
    min_drain_items:
        Group-commit threshold: the worker sleeps until at least this many
        items are queued, so each apply fuses a large batch even when
        arrivals are small — the difference between arrival-sized and
        storage-optimal applies on a busy service.  ``1`` (default) drains
        as soon as anything is queued, for minimum latency.  The threshold
        is never allowed to stall progress: :meth:`request_drain` (called
        by the service's ``drain``/``wait_for``/``flush``), a blocking
        producer, and :meth:`stop` all force a sub-threshold drain.
    linger:
        Seconds the worker waits after waking before draining (Kafka-style
        ``linger.ms``); a time-based alternative to ``min_drain_items``.
        ``0`` (default) drains immediately.
    block_timeout:
        Deadline (seconds) for the ``"block"`` policy's capacity wait;
        ``None`` (default) blocks indefinitely.  On expiry the producer
        gets :class:`BackpressureError` instead of hanging on a shard that
        stopped draining (wedged apply, dead worker).  A per-call
        ``timeout=`` on :meth:`submit` overrides it.
    on_progress:
        Optional callback invoked (outside locks) after the applied seqno
        advances or the worker fails — the service uses it to wake
        watermark waiters.

    Backend protocol
    ----------------
    ``ShardWorker`` is also the reference implementation of the shard
    *backend* protocol (see :mod:`repro.service.backend`): everything
    above it — coordinator, supervisor, facade — talks only through
    ``submit`` / ``take_pending`` / ``request_drain`` / ``stop`` on the
    write side and :meth:`query` / :meth:`supports` / :meth:`store_stats`
    / :meth:`flush_store` / :meth:`close_store` on the read side, plus
    the public seqno/counter attributes.
    :class:`~repro.service.proc_worker.ProcessShardWorker` subclasses
    this, overriding the apply hand-off and the read side with RPC.
    """

    #: Backend name this worker class implements (``"thread"`` here).
    backend = "thread"
    #: Worker process id; ``None`` for the in-process thread backend.
    pid: Optional[int] = None

    def __init__(
        self,
        index: int,
        sketch: Any,
        *,
        capacity: int = 8192,
        policy: str = "block",
        max_drain_items: int = 65536,
        min_drain_items: int = 1,
        linger: float = 0.0,
        block_timeout: Optional[float] = None,
        on_progress: Optional[Callable[[], None]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        if max_drain_items < 1:
            raise ValueError(f"max_drain_items must be >= 1, got {max_drain_items}")
        if not 1 <= min_drain_items <= max_drain_items:
            raise ValueError(
                f"min_drain_items must be in [1, max_drain_items], "
                f"got {min_drain_items}"
            )
        if linger < 0:
            raise ValueError(f"linger must be >= 0, got {linger}")
        if block_timeout is not None and block_timeout <= 0:
            raise ValueError(f"block_timeout must be > 0, got {block_timeout}")
        self.index = index
        self.sketch = sketch
        self.capacity = capacity
        self.policy = policy
        self.max_drain_items = max_drain_items
        self.min_drain_items = min_drain_items
        self.linger = linger
        self.block_timeout = block_timeout
        self._drain_requested = False
        self._on_progress = on_progress
        #: Serialises sketch mutation against coordinator reads.
        self.lock = threading.RLock()
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._pending_items = 0
        self._stopping = False
        self.acked_seqno = 0
        self.applied_seqno = 0
        self.failure: Optional[BaseException] = None
        self.items_applied = 0
        self.items_dropped = 0
        shard = str(index)
        self._items_counter = _TEL.counter("service_ingest_items_total", shard=shard)
        self._batches_counter = _TEL.counter(
            "service_ingest_batches_total", shard=shard
        )
        self._depth_gauge = _TEL.gauge("service_queue_depth", shard=shard)
        self._drops_counter = _TEL.counter(
            "service_backpressure_drops_total", shard=shard
        )
        self._queue_wait_hist = _TEL.histogram(
            "service_queue_wait_seconds", shard=shard
        )
        self._thread = threading.Thread(
            target=self._run, name=f"shard-worker-{index}", daemon=True
        )

    # -- producer side -----------------------------------------------------

    def start(self) -> None:
        """Start the apply thread (idempotent once)."""
        self._thread.start()
        mark_shard_backend(self.index, self.backend, self.pid)

    def submit(self, batch, *args, timeout=None) -> int:
        """Enqueue one routed sub-batch; returns the number of items accepted.

        Two call forms: ``submit(batch, seqno)`` with a
        :class:`~repro.core.StreamBatch` (the ingest spine's columnar
        form — the batch object is queued as-is, no copies), or the
        legacy ``submit(values, timestamps, weights, seqno)`` triple,
        which is wrapped into a ``StreamBatch`` at the door.

        Advances this shard's acked seqno on acceptance.  Under the
        ``"drop"`` policy a full queue returns ``0`` and counts the items;
        ``"block"`` waits for capacity — up to ``timeout`` seconds (default
        the worker's ``block_timeout``), raising :class:`BackpressureError`
        on expiry; ``"error"`` raises :class:`BackpressureError`
        immediately.  Capacity is a soft bound: a sub-batch is always
        admitted into an *empty* queue, however large, so an arrival batch
        bigger than the capacity can never deadlock a blocking producer.

        With telemetry on, the enqueue is traced (``service.enqueue``,
        nesting under the producer's active span) and the entry carries the
        enqueue span's :class:`~repro.telemetry.spans.TraceContext` plus its
        enqueue timestamp, so the worker thread can link its queue-wait and
        apply spans back into the producer's trace.
        """
        if isinstance(batch, StreamBatch):
            (seqno,) = args
        else:
            timestamps, weights, seqno = args
            batch = StreamBatch.from_arrays(batch, timestamps, weights)
        self.raise_if_failed()
        n = len(batch)
        if n == 0:
            return 0
        if timeout is None:
            timeout = self.block_timeout
        if not _TEL.enabled:
            return self._submit_locked(batch, seqno, None, None, timeout)
        with span("service.enqueue", shard=self.index, items=n) as enq_span:
            accepted = self._submit_locked(
                batch, seqno, enq_span.context, time.perf_counter(), timeout
            )
            enq_span.set_attr("accepted", accepted)
            return accepted

    def _submit_locked(self, batch, seqno, ctx, enqueued_at, timeout=None):
        n = len(batch)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while (
                self.policy == "block"
                and self._pending_items > 0
                and self._pending_items + n > self.capacity
                and not self._stopping
                and self.failure is None
            ):
                # a worker sitting below min_drain_items must not leave the
                # producer stuck on a full queue
                self._drain_requested = True
                self._cond.notify_all()
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise BackpressureError(
                        f"shard {self.index} queue still full after "
                        f"{timeout:g}s ({self._pending_items}/{self.capacity} "
                        f"items) — blocking deadline expired"
                    )
                self._cond.wait(remaining)
            if self.failure is not None:
                raise ShardFailedError(self.index, self.failure)
            if self._stopping:
                raise RuntimeError(f"shard {self.index} is stopped")
            if self._pending_items > 0 and self._pending_items + n > self.capacity:
                if self.policy == "drop":
                    self.items_dropped += n
                    if _TEL.enabled:
                        self._drops_counter.inc(n)
                    return 0
                raise BackpressureError(
                    f"shard {self.index} queue full "
                    f"({self._pending_items}/{self.capacity} items)"
                )
            before = self._pending_items
            self._queue.append((batch, seqno, ctx, enqueued_at))
            self._pending_items += n
            if seqno > self.acked_seqno:
                self.acked_seqno = seqno
            if _TEL.enabled:
                self._depth_gauge.set(self._pending_items)
            if before < self.min_drain_items <= self._pending_items:
                # the worker only waits while the queue is below the drain
                # threshold, so only the submit that crosses it needs to
                # wake anyone — fewer context switches, and the worker
                # drains larger fused batches
                self._cond.notify_all()
        return n

    def raise_if_failed(self) -> None:
        """Surface a worker-thread failure to the caller, if one happened."""
        if self.failure is not None:
            raise ShardFailedError(self.index, self.failure)

    def request_drain(self) -> None:
        """Ask the worker to apply everything queued, below threshold or not.

        Used by the service's ``drain``/``wait_for``/``flush`` so that the
        ``min_drain_items`` group-commit threshold never delays an explicit
        consistency point.  The request clears once the queue is empty.
        """
        with self._cond:
            self._drain_requested = True
            self._cond.notify_all()

    @property
    def pending_items(self) -> int:
        """Items currently queued (snapshot; racy by nature)."""
        return self._pending_items

    def stop(self) -> None:
        """Ask the worker to drain its queue and exit, then join it."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join()

    def take_pending(self) -> list:
        """Remove and return every queued sub-batch (failover salvage).

        Entries are ``(batch, seqno, ctx, enqueued_at)`` tuples in seqno
        order, ``batch`` a :class:`~repro.core.StreamBatch`.  A supervisor
        calls this on a
        poisoned worker to move acknowledged-but-unapplied sub-batches —
        including a failed fused batch the worker pushed back because it
        never reached the WAL — into its redirect buffer for replay on the
        rebuilt shard.
        """
        with self._cond:
            entries = list(self._queue)
            self._queue.clear()
            self._pending_items = 0
            if _TEL.enabled:
                self._depth_gauge.set(0)
            self._cond.notify_all()
        return entries

    # -- read side (backend protocol) --------------------------------------

    def query(
        self,
        method: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        *,
        want_details: bool = False,
        post: Optional[Callable] = None,
        timeout: Optional[float] = None,
    ) -> tuple:
        """Run one read on this shard's sketch; returns ``(result, details)``.

        The read holds the shard's apply lock, so it observes the sketch
        between fused applies, never mid-apply.  ``want_details`` consults
        the explain plan hook (:func:`~repro.service.explain
        .shard_plan_details`) under the same lock; ``post`` transforms the
        result while the lock is still held (the coordinator deep-copies
        live sketch objects here); ``timeout`` bounds the lock
        acquisition and raises :class:`ShardTimeoutError` on expiry.
        """
        self.raise_if_failed()
        if not self.lock.acquire(timeout=-1 if timeout is None else timeout):
            raise ShardTimeoutError(self.index, timeout)
        try:
            details = (
                shard_plan_details(self.sketch, method, args)
                if want_details
                else None
            )
            result = getattr(self.sketch, method)(*args, **(kwargs or {}))
            if post is not None:
                result = post(result)
        finally:
            self.lock.release()
        return result, details

    def supports(self, method: str) -> bool:
        """Whether this shard's sketch answers ``method``."""
        return hasattr(self.sketch, method)

    def store_stats(self) -> Optional[dict]:
        """The shard's durable-store counters, or None when not durable."""
        with self.lock:
            stats = getattr(self.sketch, "stats", None)
            return None if stats is None else stats()

    def flush_store(self) -> None:
        """Force the shard's WAL to stable storage (durable shards only)."""
        with self.lock:
            flush = getattr(self.sketch, "flush", None)
            if flush is not None:
                flush()

    def close_store(self) -> None:
        """Close the shard's durable store (final snapshot + WAL release)."""
        with self.lock:
            close = getattr(self.sketch, "close", None)
            if close is not None:
                close()

    def pull_telemetry(self) -> None:
        """Sync child-process telemetry into this process (no-op here).

        The thread backend records metrics and spans directly into the
        process-global registry; only the process backend has anything to
        pull.  Exists so scrape hooks can treat workers uniformly.
        """

    # -- worker side -------------------------------------------------------

    def _drain_locked(self):
        """Pop up to ``max_drain_items`` worth of sub-batches (cond held)."""
        parts = []
        taken = 0
        while self._queue and taken < self.max_drain_items:
            entry = self._queue.popleft()
            parts.append(entry)
            taken += len(entry[0])
        self._pending_items -= taken
        return parts, taken

    @staticmethod
    def _fuse(parts) -> StreamBatch:
        """Fuse queued sub-batches into one :class:`StreamBatch`.

        A single queued entry's batch is applied as-is (zero-copy all the
        way from the router split); multiple entries pay one columnar
        concatenation (:meth:`StreamBatch.concat`).
        """
        return StreamBatch.concat([part[0] for part in parts])

    def _run(self) -> None:
        while True:
            with self._cond:
                while (
                    self._pending_items < self.min_drain_items
                    and not self._stopping
                    and not self._drain_requested
                ):
                    self._cond.wait()
                if not self._queue:
                    if self._stopping:
                        return
                    self._drain_requested = False
                    continue
                if self.linger > 0 and not self._stopping and not self._drain_requested:
                    # group-commit: let producers stack more sub-batches
                    # before draining (they do not re-notify past the
                    # threshold, so this wait runs its full course or is
                    # cut short by stop/request_drain)
                    self._cond.wait(self.linger)
                parts, taken = self._drain_locked()
                if not self._queue:
                    self._drain_requested = False
                if _TEL.enabled:
                    self._depth_gauge.set(self._pending_items)
                self._cond.notify_all()  # wake blocked producers
            fused = self._fuse(parts)
            last_seqno = parts[-1][1]
            apply_parent = None
            if _TEL.enabled:
                # queue-wait is only known now, at drain time: synthesise one
                # finished span per sub-batch, parented into the trace its
                # producer captured at enqueue, and feed the per-shard
                # enqueue→drain latency histogram
                drained_at = time.perf_counter()
                for part in parts:
                    ctx, enqueued_at = part[2], part[3]
                    if apply_parent is None and ctx is not None:
                        apply_parent = ctx
                    if enqueued_at is None:
                        continue
                    wait = drained_at - enqueued_at
                    self._queue_wait_hist.observe(wait)
                    record_span(
                        "service.queue_wait",
                        start=enqueued_at,
                        wall_seconds=wait,
                        parent=ctx,
                        shard=self.index,
                        items=len(part[0]),
                        seqno=part[1],
                    )
            if not self._apply_fused(parts, fused, taken, last_seqno, apply_parent):
                return
            self.items_applied += taken
            if _TEL.enabled:
                self._items_counter.inc(taken)
                self._batches_counter.inc()
            # single-writer field; producers wait on capacity (notified at
            # drain time) and watermark waiters go through on_progress
            if last_seqno > self.applied_seqno:
                self.applied_seqno = last_seqno
            if self._on_progress is not None:
                self._on_progress()

    def _apply_fused(self, parts, fused, taken, last_seqno, apply_parent) -> bool:
        """Apply one fused batch; the backend-specific half of the loop.

        Returns True on success (the caller accounts the items and
        advances the applied seqno); on failure this method records the
        poisoning — including the WAL-verified push-back-or-account
        decision — and returns False, ending the apply loop.  The process
        backend overrides this to ship the batch to its worker child.
        """
        wal = getattr(self.sketch, "wal", None)
        records_before = None if wal is None else wal.records_appended
        try:
            # the apply joins the first traced sub-batch's trace; the
            # other fused sub-batches still link to it via their shared
            # queue_wait/enqueue ancestry being drained together
            with span(
                "service.apply_batch",
                parent=apply_parent,
                shard=self.index,
                items=taken,
                fused=len(parts),
            ):
                with self.lock:
                    apply_stream_batch(self.sketch, fused)
        except BaseException as exc:  # noqa: BLE001 — includes SimulatedCrash
            wal_advanced = wal is not None and wal.records_appended != records_before
            self._record_failure(
                exc, parts, taken, last_seqno, durable=wal is not None,
                wal_advanced=wal_advanced,
            )
            return False
        return True

    def _record_failure(
        self, exc, parts, taken, last_seqno, *, durable, wal_advanced
    ) -> None:
        """Poison the worker, deciding push-back vs. durably-applied.

        When the fused batch verifiably never reached a durable shard's
        WAL, the sketch is untouched: the sub-batches go back onto the
        queue front where a supervisor's salvage will find them.  Once the
        append landed, recovery replays the record from disk instead —
        re-parking it here would double-apply — so the items are
        accounted as applied.
        """
        with self._cond:
            self.failure = exc
            if durable and not wal_advanced:
                self._queue.extendleft(reversed(parts))
                self._pending_items += taken
            elif durable:
                self.items_applied += taken
                if last_seqno > self.applied_seqno:
                    self.applied_seqno = last_seqno
                if _TEL.enabled:
                    self._items_counter.inc(taken)
            self._cond.notify_all()
        if self._on_progress is not None:
            self._on_progress()
