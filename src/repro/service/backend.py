"""Shard execution backends: who runs a shard's sketch, and where.

The sharded service executes each shard through a *worker* object; the
``backend=`` knob on :class:`~repro.service.ShardedSketchService` selects
which implementation:

``"thread"`` (default)
    :class:`~repro.service.worker.ShardWorker` — the sketch lives in the
    service process, one daemon apply thread per shard.  Zero IPC cost,
    full GIL contention: concurrent shards *interleave* rather than run
    in parallel, so this backend is for modest throughput, tests, and
    platforms without ``fork``.

``"process"``
    :class:`~repro.service.proc_worker.ProcessShardWorker` — the sketch
    (and, for durable services, its WAL + snapshots) lives in a dedicated
    forked worker process.  Fused batches ship through shared memory,
    queries/health/stats travel over a framed pickle RPC, and the shards
    genuinely run in parallel — this is the backend that escapes the GIL
    (see ``docs/SCALING.md`` for the selection matrix and measured
    scaling).

Both backends implement one worker protocol — ``submit`` / ``query`` /
``supports`` / ``store_stats`` / ``flush_store`` / ``close_store`` plus
the seqno bookkeeping the supervisor and watermark read — so everything
above the worker (router, coordinator, supervisor, facade) is
backend-neutral.

The module also owns the ``service_shard_backend`` info metric: one gauge
child per shard labelled with the backend name, whose value is the worker
process id (``0`` for the in-process thread backend) — ``/metrics`` and
``/healthz`` both expose which process owns each shard, so a wedged child
is diagnosable from outside.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.registry import TELEMETRY as _TEL

#: Accepted values for ``ShardedSketchService(backend=...)``.
SHARD_BACKENDS = ("thread", "process")

_TEL.registry.declare(
    "service_shard_backend",
    "gauge",
    "Shard execution backend info: value is the worker process id "
    "(0 = in-process thread backend), labelled by shard and backend.",
)


def validate_backend(backend: str) -> str:
    """Return ``backend`` if it is a known backend name, else raise."""
    if backend not in SHARD_BACKENDS:
        raise ValueError(
            f"backend must be one of {SHARD_BACKENDS}, got {backend!r}"
        )
    return backend


def worker_class(backend: str):
    """The worker class implementing ``backend`` (imported lazily)."""
    validate_backend(backend)
    if backend == "process":
        from repro.service.proc_worker import ProcessShardWorker

        return ProcessShardWorker
    from repro.service.worker import ShardWorker

    return ShardWorker


def mark_shard_backend(shard: int, backend: str, pid: Optional[int]) -> None:
    """Publish one shard's backend (and owning pid) as an info gauge."""
    if _TEL.enabled:
        _TEL.gauge(
            "service_shard_backend", shard=str(shard), backend=backend
        ).set(0 if pid is None else pid)
