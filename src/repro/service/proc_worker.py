"""Process-backed shard workers: the backend that escapes the GIL.

A :class:`ProcessShardWorker` keeps the whole parent-side contract of
:class:`~repro.service.worker.ShardWorker` — bounded queue, backpressure
policies, group-commit draining, poisoning with WAL-verified push-back,
salvage via ``take_pending`` — but the shard's sketch lives in a dedicated
**forked worker process**.  The parent-side apply thread becomes a
*shipper*: each fused :class:`~repro.core.StreamBatch` is written once
into a pooled shared-memory segment and announced to the child over the
framed-pickle RPC (:mod:`repro.service.rpc`); the child maps the columns
back as zero-copy views, applies them through the very same
:func:`repro.core.apply_stream_batch` dispatch (WAL-first for durable
shards), and acks with its durable seqno plus any telemetry deltas.

Division of state:

* **parent** — queue, seqno bookkeeping, backpressure, failure flag,
  supervisor integration.  ``worker.sketch`` is ``None``; every read goes
  through :meth:`ProcessShardWorker.query` and friends.
* **child** — the sketch, and for durable services the shard's
  ``DurableSketch`` (WAL + snapshots).  The child is single-threaded:
  applies and queries serialise on its command loop, which is exactly the
  apply-lock serialisation the thread backend provides.

Failure semantics mirror the thread backend:

* an apply the child *reports* as failed poisons the parent worker with
  the child's exception; the child says whether the WAL record landed,
  and the parent pushes the fused sub-batches back (never reached the
  WAL) or accounts them as durably applied (landed; recovery replays
  them) — same decision, same evidence.
* a child that *dies* (SIGKILL, crash) closes the RPC pipe; the parent
  joins the corpse and then reads the shard directory itself — last WAL
  record seqno and last snapshot seqno versus the last acked durable
  seqno — to make the same landed-or-not call from disk.  Rebuild-in-
  place then works unchanged: the supervisor salvages the parent-side
  queue, the service's rebuild hook forks a fresh child that recovers
  from snapshot+WAL, and the redirect buffer replays.

Telemetry stays whole: the child's metric increments and finished spans
ship back piggybacked on every apply ack (and on demand via
:meth:`ProcessShardWorker.pull_telemetry`) and merge into the parent's
process-global registry and span collector, so ``/metrics``, ``/report``
and trace trees look the same under either backend.  Deltas a killed
child accumulated since its last shipment are unrecoverable; the parent
counts that loss — estimated from the operations it observed since the
last shipped snapshot — in ``service_telemetry_delta_lost_total``, so a
metrics gap after a crash is visible instead of silent.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro.core.base import apply_stream_batch
from repro.durability.recovery import list_snapshots
from repro.durability.store import DurableSketch
from repro.durability.wal import list_segments, scan_segment
from repro.service.rpc import (
    ChannelClosed,
    ChildSegmentCache,
    FramedPipe,
    RpcClient,
    RpcTimeout,
    SegmentPool,
    close_inherited_parent_fds,
    decode_batch,
    encode_batch,
    register_parent_fds,
)
from repro.service.worker import (
    ShardFailedError,
    ShardTimeoutError,
    ShardWorker,
)
from repro.telemetry.registry import TELEMETRY as _TEL
from repro.telemetry.spans import SPANS, SpanRecord, span

# Declared at import time so the docs-catalog lint sees the family even
# before a process worker exists; per-shard children bind at construction.
_TEL.registry.declare(
    "service_telemetry_delta_lost_total",
    "counter",
    "Child-side telemetry operations whose deltas died with the child "
    "before shipping (estimated from the last shipped snapshot), by shard.",
)


class WorkerProcessDied(RuntimeError):
    """A shard's worker process exited without acking (crash or kill)."""

    def __init__(self, shard: int, pid: Optional[int], exitcode: Optional[int]):
        super().__init__(
            f"shard {shard} worker process (pid {pid}) died, exitcode {exitcode}"
        )
        self.shard = shard
        self.pid = pid
        self.exitcode = exitcode


def _describe_exc(exc: BaseException) -> dict:
    """Wire form of an exception: type + repr, plus pickle when possible."""
    import pickle

    payload = {"type": type(exc).__name__, "repr": repr(exc)}
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)  # some exceptions pickle but cannot rebuild
        payload["pickled"] = blob
    except Exception:
        pass
    return payload


def _rebuild_exc(described: dict) -> BaseException:
    """Parent-side inverse of :func:`_describe_exc` (best-effort)."""
    import pickle

    blob = described.get("pickled")
    if blob is not None:
        try:
            return pickle.loads(blob)
        except Exception:
            pass
    return RuntimeError(f"{described['type']}: {described['repr']}")


_SNAPSHOT_SEQNO = re.compile(r"(\d+)")


def _durable_frontier(directory) -> int:
    """Highest update seqno evidenced on disk in a shard directory.

    The max of the last WAL record's seqno and the newest snapshot's
    seqno: after a child died mid-apply this is what recovery will
    restore through, so comparing it against the last *acked* durable
    seqno decides push-back versus already-landed — the same verification
    the thread backend does in memory with ``wal.records_appended``.
    """
    directory = Path(directory)
    frontier = 0
    for path in list_snapshots(directory)[:1]:
        match = _SNAPSHOT_SEQNO.search(path.stem)
        if match:
            frontier = max(frontier, int(match.group(1)))
    for path in reversed(list_segments(directory)):
        scan = scan_segment(path)
        if scan.records:
            frontier = max(frontier, scan.records[-1].seqno)
            break
    return frontier


# -- child-side telemetry shipping ------------------------------------------


class _TelemetryShip:
    """Child-side delta tracker: what changed since the last shipment.

    The constructor primes the baseline with every child metric's
    *current* value, so only movement after construction ships — in
    particular, gauges the child inherited from the parent (other
    shards' backend-info gauges, say) never ship their reset-to-zero
    state back and clobber the parent's live values.
    """

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._hists: dict = {}
        for family in _TEL.registry.families():
            for labels, child in family.samples():
                key = (family.name, tuple(sorted(labels.items())))
                if family.kind == "counter":
                    self._counters[key] = child.value
                elif family.kind == "gauge":
                    self._gauges[key] = child.value
                else:
                    with child._lock:  # noqa: SLF001
                        self._hists[key] = (
                            list(child.bucket_counts),
                            child.count,
                            child.sum,
                        )

    def collect(self) -> Optional[dict]:
        """Metric deltas + finished spans since the last call, or None."""
        if not _TEL.enabled:
            return None
        metrics = []
        for family in _TEL.registry.families():
            for labels, child in family.samples():
                key = (family.name, tuple(sorted(labels.items())))
                entry = {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labels": labels,
                }
                if family.kind == "counter":
                    value = child.value
                    delta = value - self._counters.get(key, 0.0)
                    if delta <= 0:
                        continue
                    self._counters[key] = value
                    entry["delta"] = delta
                elif family.kind == "gauge":
                    value = child.value
                    if self._gauges.get(key) == value:
                        continue
                    self._gauges[key] = value
                    entry["value"] = value
                else:
                    with child._lock:  # noqa: SLF001 — consistent triple read
                        counts = list(child.bucket_counts)
                        count = child.count
                        total = child.sum
                    prev = self._hists.get(key, ([0] * len(counts), 0, 0.0))
                    if count == prev[1]:
                        continue
                    self._hists[key] = (counts, count, total)
                    entry["bucket_deltas"] = [
                        now - before for now, before in zip(counts, prev[0])
                    ]
                    entry["count"] = count - prev[1]
                    entry["sum"] = total - prev[2]
                    entry["bounds"] = child.bounds
                metrics.append(entry)
        records = SPANS.snapshot()
        SPANS.clear()
        return {
            "metrics": metrics,
            "spans": [record.as_dict() for record in records],
        }


def merge_child_telemetry(payload: Optional[dict]) -> None:
    """Merge a child's shipped deltas into this process's telemetry.

    Counters add their delta, gauges adopt the child's last value,
    histograms add bucket/count/sum deltas under the target's lock, and
    shipped span records are re-recorded with their original trace ids —
    so a trace that hops parent → child renders as one tree.
    """
    if not payload:
        return
    registry = _TEL.registry
    for entry in payload.get("metrics", ()):
        labels = dict(entry["labels"])
        name, help_text = entry["name"], entry.get("help", "")
        if entry["kind"] == "counter":
            registry.counter(name, help_text, **labels).inc(entry["delta"])
        elif entry["kind"] == "gauge":
            registry.gauge(name, help_text, **labels).set(entry["value"])
        else:
            child = registry.histogram(
                name, help_text, buckets=tuple(entry["bounds"]), **labels
            )
            deltas = entry["bucket_deltas"]
            with child._lock:  # noqa: SLF001 — cross-process histogram merge
                if len(child.bucket_counts) == len(deltas):
                    for index, delta in enumerate(deltas):
                        child.bucket_counts[index] += delta
                    child.count += entry["count"]
                    child.sum += entry["sum"]
    for record in payload.get("spans", ()):
        SPANS.record(SpanRecord(**record))


# -- the child process -------------------------------------------------------


def _unwrap_sketch(sketch: Any) -> Any:
    """Peel chaos/durability wrappers down to the bare sketch object."""
    while True:
        if isinstance(sketch, DurableSketch):
            sketch = sketch.sketch
            continue
        inner = getattr(sketch, "_inner", None)
        if inner is not None:
            sketch = inner
            continue
        return sketch


def _find_store(sketch: Any) -> Optional[DurableSketch]:
    while sketch is not None:
        if isinstance(sketch, DurableSketch):
            return sketch
        sketch = getattr(sketch, "_inner", None)
    return None


def _child_main(
    index: int,
    build: Callable[[], Any],
    cmd_fd: int,
    resp_fd: int,
    snapshot_on_open: bool,
    telemetry_enabled: bool,
) -> None:
    """Serve one shard from a forked worker process (never returns)."""
    pipe = FramedPipe(cmd_fd, resp_fd)
    close_inherited_parent_fds()
    if telemetry_enabled:
        _TEL.enable()
    else:
        _TEL.disable()
    # inherited pre-fork values belong to the parent's registry; this
    # process ships *deltas*, so its own accounting starts from zero
    _TEL.registry.reset()
    SPANS.clear()
    cache = ChildSegmentCache()
    ship = _TelemetryShip()
    build_error = None
    sketch = None
    store = None
    try:
        sketch = build()
        store = _find_store(sketch)
        if store is not None and snapshot_on_open:
            store.snapshot()
    except BaseException as exc:  # noqa: BLE001 — report, then exit
        build_error = _describe_exc(exc)
    poisoned = False

    def handle(op: str, payload: Any) -> dict:
        nonlocal poisoned
        if op == "hello":
            if build_error is not None:
                return {"error": build_error}
            return {
                "pid": os.getpid(),
                "store_seqno": 0 if store is None else store.applied_seqno,
            }
        if build_error is not None:
            return {"error": build_error}
        if op == "apply":
            if payload.get("telemetry"):
                _TEL.enable()
            batch = decode_batch(payload["descriptor"], cache)
            wal = None if store is None else store.wal
            before = None if wal is None else wal.records_appended
            try:
                with span(
                    "service.apply_batch",
                    parent=payload.get("ctx"),
                    shard=index,
                    items=payload["items"],
                    fused=payload["fused"],
                ):
                    apply_stream_batch(sketch, batch)
            except BaseException as exc:  # noqa: BLE001 — SimulatedCrash too
                poisoned = True
                return {
                    "error": _describe_exc(exc),
                    "wal_advanced": (
                        wal is not None and wal.records_appended != before
                    ),
                    "store_seqno": None if store is None else store.applied_seqno,
                    "telemetry": ship.collect(),
                }
            return {
                "ok": True,
                "store_seqno": None if store is None else store.applied_seqno,
                "telemetry": ship.collect(),
            }
        if op == "query":
            try:
                details = None
                if payload.get("want_details"):
                    from repro.service.explain import shard_plan_details

                    details = shard_plan_details(
                        sketch, payload["method"], payload["args"]
                    )
                result = getattr(sketch, payload["method"])(
                    *payload["args"], **(payload.get("kwargs") or {})
                )
            except Exception as exc:
                return {"error": _describe_exc(exc)}
            return {"result": result, "details": details}
        if op == "supports":
            return {"result": hasattr(sketch, payload["method"])}
        if op == "store_stats":
            return {"result": None if store is None else store.stats()}
        if op == "flush":
            if store is not None:
                store.flush()
            return {"ok": True}
        if op == "telemetry":
            return {"telemetry": ship.collect()}
        if op == "get_state":
            return {"result": _unwrap_sketch(sketch)}
        if op == "sleep":
            time.sleep(payload["seconds"])
            return {"ok": True}
        if op == "ping":
            return {"pid": os.getpid()}
        if op == "stop":
            try:
                if store is not None:
                    if poisoned:
                        store.wal.close()
                    else:
                        store.close(
                            final_snapshot=bool(payload.get("final", True))
                        )
            except Exception:
                pass  # a torn store is recovery's job, not shutdown's
            return {"ok": True, "stopping": True}
        return {"error": {"type": "ValueError", "repr": f"unknown op {op!r}"}}

    while True:
        try:
            req_id, op, payload = pipe.recv()
        except ChannelClosed:
            break  # parent is gone; nothing to serve, nothing to tell
        try:
            reply = handle(op, payload)
        except BaseException as exc:  # noqa: BLE001 — keep serving
            reply = {"error": _describe_exc(exc)}
        try:
            pipe.send((req_id, op, reply))
        except ChannelClosed:
            break
        except Exception as exc:  # unpicklable result object
            try:
                pipe.send((req_id, op, {"error": _describe_exc(exc)}))
            except Exception:
                break
        if reply.get("stopping"):
            break
    cache.close()
    pipe.close()


# -- the parent-side worker --------------------------------------------------


class ProcessShardWorker(ShardWorker):
    """A shard worker whose sketch lives in a dedicated forked process.

    Drop-in replacement for :class:`~repro.service.worker.ShardWorker`
    behind ``ShardedSketchService(backend="process")``: same queueing,
    backpressure, seqno bookkeeping, poisoning and salvage contract, but
    the fused applies ship to a worker child through shared memory and
    all reads go over the framed RPC.  Construct with ``build`` — a
    zero-argument callable, run *in the child after the fork*, returning
    the shard's (possibly wrapped, possibly durable) sketch; pass
    ``wal_directory`` for durable shards so a dead child's WAL frontier
    can be verified from disk.

    Requires a platform with the ``fork`` start method (the build
    closures that make sketch factories convenient do not pickle, and
    fork also lets the child inherit pre-opened pipe ends for free).
    """

    backend = "process"

    def __init__(
        self,
        index: int,
        build: Callable[[], Any],
        *,
        wal_directory=None,
        snapshot_on_open: bool = False,
        hello_timeout: float = 120.0,
        **options,
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "backend='process' requires the fork start method "
                "(POSIX); use backend='thread' on this platform"
            )
        super().__init__(index, None, **options)
        self._build = build
        self._wal_directory = wal_directory
        self._durable = wal_directory is not None
        self._snapshot_on_open = snapshot_on_open
        self._hello_timeout = hello_timeout
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._rpc: Optional[RpcClient] = None
        self._pool = SegmentPool()
        self._supports_cache: dict = {}
        self._store_seqno = 0
        self._child_stopping = False
        self._child_ready = False
        # child-touching operations (queries, reads, in-flight items)
        # whose telemetry deltas have not come back on an ack or pull yet
        # — the honest estimate of what a SIGKILL loses
        self._unshipped_ops = 0
        self._lost_deltas = _TEL.counter(
            "service_telemetry_delta_lost_total", shard=index
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Fork the worker child, complete its hello, start the shipper.

        The hello handshake surfaces child-side construction errors
        (recovery failures, bad factories) here, synchronously — the
        parent raises instead of poisoning later.
        """
        ctx = multiprocessing.get_context("fork")
        self._child_stopping = False
        self._child_ready = False
        cmd_read, cmd_write = os.pipe()
        resp_read, resp_write = os.pipe()
        register_parent_fds(cmd_write, resp_read)
        self._process = ctx.Process(
            target=_child_main,
            args=(
                self.index,
                self._build,
                cmd_read,
                resp_write,
                self._snapshot_on_open,
                _TEL.enabled,
            ),
            name=f"shard-proc-{self.index}",
            daemon=True,
        )
        self._process.start()
        os.close(cmd_read)
        os.close(resp_write)
        self._rpc = RpcClient(
            FramedPipe(resp_read, cmd_write),
            name=f"shard-{self.index}",
            on_dead=self._on_channel_dead,
        )
        try:
            hello = self._rpc.call("hello", timeout=self._hello_timeout)
        except (RpcTimeout, ChannelClosed) as exc:
            self.ensure_child_dead()
            raise RuntimeError(
                f"shard {self.index} worker process failed to start"
            ) from exc
        if "error" in hello:
            self.ensure_child_dead()
            raise _rebuild_exc(hello["error"])
        self.pid = hello["pid"]
        self._store_seqno = hello.get("store_seqno") or 0
        self._child_ready = True
        super().start()

    def stop(self) -> None:
        """Drain and stop the shipper, then shut the child down cleanly.

        A healthy child closes its durable store (final snapshot + WAL
        release) before exiting; a poisoned or dead child leaves the
        directory as-is for recovery — exactly the thread backend's close
        semantics.
        """
        super().stop()
        self._shutdown_child(final=self.failure is None)

    def ensure_child_dead(self) -> None:
        """Make sure the worker process is gone (rebuild prerequisite).

        Two processes must never hold one shard's WAL: the service's
        rebuild hook calls this on the old worker before forking a
        replacement child over the same directory.
        """
        self._shutdown_child(final=False)

    def _shutdown_child(self, final: bool) -> None:
        process = self._process
        if process is None:
            return
        self._process = None
        self._child_stopping = True
        if self._rpc is not None and self._rpc.dead is None:
            try:
                self._rpc.call(
                    "stop", {"final": final}, timeout=30.0 if final else 2.0
                )
            except Exception:
                pass
        process.join(timeout=10.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        if self._rpc is not None:
            self._rpc.close()
        self._pool.close()

    # -- write side: ship fused batches ------------------------------------

    def _apply_fused(self, parts, fused, taken, last_seqno, apply_parent) -> bool:
        """Ship one fused batch to the child and wait for its ack."""
        descriptor = encode_batch(fused, self._pool)
        segment = descriptor.get("segment")
        payload = {
            "descriptor": descriptor,
            "seqno": last_seqno,
            "items": taken,
            "fused": len(parts),
            "ctx": apply_parent,
            "telemetry": _TEL.enabled,
        }
        try:
            with span(
                "service.shard_ship",
                parent=apply_parent,
                shard=self.index,
                items=taken,
                fused=len(parts),
            ):
                reply = self._rpc.call("apply", payload)
        except ChannelClosed:
            self._handle_child_death(parts, taken, last_seqno)
            return False
        finally:
            if segment is not None:
                self._pool.release(segment)
        if reply.get("telemetry") is not None:
            merge_child_telemetry(reply["telemetry"])
            self._unshipped_ops = 0  # the ack shipped everything pending
        if "error" in reply:
            self._record_failure(
                _rebuild_exc(reply["error"]),
                parts,
                taken,
                last_seqno,
                durable=self._durable,
                wal_advanced=bool(reply.get("wal_advanced")),
            )
            return False
        if reply.get("store_seqno") is not None:
            self._store_seqno = reply["store_seqno"]
        return True

    def _handle_child_death(self, parts, taken, last_seqno) -> None:
        """Poison after a mid-apply child death, verifying the WAL on disk.

        The child cannot tell us whether the in-flight BATCH record
        landed, so the parent reads the evidence itself: if the shard
        directory's durable frontier moved past the last acked seqno, the
        record (or a snapshot covering it) is on disk and recovery will
        replay it — account the items; otherwise the batch verifiably
        never became durable — push the sub-batches back for salvage.
        """
        process = self._process
        if process is not None:
            process.join(timeout=10.0)
        exitcode = None if process is None else process.exitcode
        cause = WorkerProcessDied(self.index, self.pid, exitcode)
        self._account_lost_deltas(taken)
        landed = False
        if self._durable:
            landed = _durable_frontier(self._wal_directory) > self._store_seqno
        self._record_failure(
            cause,
            parts,
            taken,
            last_seqno,
            durable=self._durable,
            wal_advanced=landed,
        )

    def _on_channel_dead(self, exc) -> None:
        """Receiver-thread hook: the reply pipe hit EOF.

        Without this, an *idle* child's death (SIGKILL, OOM — nothing in
        flight, no query coming) would go unnoticed until the next call
        touched the pipe, while the supervisor keeps polling a stale
        ``failure is None``.  Record the death here so detection is
        prompt.  An in-flight apply still runs its own WAL-frontier
        accounting through :meth:`_handle_child_death` (recording twice
        is harmless: this path parks nothing); intentional shutdown sets
        ``_child_stopping`` first and is not a failure.
        """
        if (
            not self._child_ready
            or self._child_stopping
            or self.failure is not None
        ):
            return
        rpc = self._rpc
        if rpc is None or rpc.dead is None:  # stale client from before a rebuild
            return
        process = self._process
        exitcode = None
        if process is not None:
            process.join(timeout=5.0)
            exitcode = process.exitcode
        cause = WorkerProcessDied(self.index, self.pid, exitcode)
        cause.__cause__ = exc
        self._account_lost_deltas(0)
        self._record_failure(
            cause, (), 0, self.applied_seqno,
            durable=self._durable, wal_advanced=True,
        )

    def _account_lost_deltas(self, in_flight_items: int) -> None:
        """Count telemetry deltas that died with the child, unshipped.

        Child-side metric movement ships only on apply acks and explicit
        pulls; query replies carry none.  Whatever the child accumulated
        since the last shipped snapshot — one delta per parent-observed
        child operation, plus any items in the apply that was in flight
        when it died — vanished with the process.  The exact child-side
        count is unknowable (the child is dead), so this is the honest
        lower-bound estimate.  Zeroed after counting: both death paths
        may run for one corpse, and the loss must count once.
        """
        lost = self._unshipped_ops + in_flight_items
        self._unshipped_ops = 0
        if lost and _TEL.enabled:
            self._lost_deltas.inc(lost)

    # -- read side: RPC ----------------------------------------------------

    def _call(self, op: str, payload=None, timeout: Optional[float] = None):
        self.raise_if_failed()
        if self._rpc is None:
            raise RuntimeError(f"shard {self.index} not started")
        try:
            reply = self._rpc.call(op, payload, timeout=timeout)
        except RpcTimeout as exc:
            raise ShardTimeoutError(self.index, timeout) from exc
        except ChannelClosed as exc:
            self.raise_if_failed()
            raise ShardFailedError(self.index, exc) from exc
        # replies to reads carry no telemetry payload: whatever counters
        # the child bumped serving this stay unshipped until the next
        # apply ack or pull — track them for loss accounting
        self._unshipped_ops += 1
        return reply

    def query(
        self,
        method: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        *,
        want_details: bool = False,
        post: Optional[Callable] = None,
        timeout: Optional[float] = None,
    ) -> tuple:
        """Run one read in the worker child; returns ``(result, details)``.

        The child serves commands sequentially, so the read observes the
        sketch between fused applies — the process-backend equivalent of
        taking the apply lock.  ``timeout`` bounds the RPC wait and maps
        to :class:`~repro.service.worker.ShardTimeoutError` (a wedged or
        busy child); a dead child raises
        :class:`~repro.service.worker.ShardFailedError`.  The result
        crosses the process boundary by pickle, so it is already a
        private copy; ``post`` (the coordinator's defensive deep-copy)
        is applied parent-side for interface compatibility.
        """
        reply = self._call(
            "query",
            {
                "method": method,
                "args": args,
                "kwargs": kwargs,
                "want_details": want_details,
            },
            timeout=timeout,
        )
        if "error" in reply:
            raise _rebuild_exc(reply["error"])
        result = reply["result"]
        if post is not None:
            result = post(result)
        return result, reply.get("details")

    def supports(self, method: str) -> bool:
        """Whether the child's sketch answers ``method`` (cached)."""
        cached = self._supports_cache.get(method)
        if cached is None:
            cached = bool(self._call("supports", {"method": method})["result"])
            self._supports_cache[method] = cached
        return cached

    def store_stats(self) -> Optional[dict]:
        """The child's durable-store counters, or None when not durable."""
        return self._call("store_stats")["result"]

    def flush_store(self) -> None:
        """Ask the child to force its WAL to stable storage."""
        self._call("flush")

    def close_store(self) -> None:
        """No-op: the child closes its own store during :meth:`stop`."""

    def sketch_state(self, timeout: Optional[float] = None):
        """The shard's bare sketch object, copied out of the child.

        Peels durability/chaos wrappers in the child and ships the
        underlying sketch back by pickle — the chaos harness uses this
        for state fingerprinting.  Expensive (full state copy); not a
        query-path API.
        """
        reply = self._call("get_state", timeout=timeout)
        if "error" in reply:
            raise _rebuild_exc(reply["error"])
        return reply["result"]

    def pull_telemetry(self) -> None:
        """Fetch and merge the child's telemetry deltas (best-effort).

        Piggybacked shipping covers the ingest path; this pull exists for
        scrape time, so ``/metrics`` reflects child-side activity (like
        snapshot counters) that happened since the last apply ack.  Any
        RPC problem is swallowed — scraping must never fail a service.
        """
        if self._rpc is None or self._rpc.dead is not None or self.failure is not None:
            return
        try:
            reply = self._rpc.call(
                "telemetry", {"telemetry": _TEL.enabled}, timeout=5.0
            )
        except Exception:
            return
        if reply.get("telemetry") is not None:
            merge_child_telemetry(reply["telemetry"])
            self._unshipped_ops = 0  # the pull shipped everything pending
