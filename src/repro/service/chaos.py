"""Service-level chaos harness: kill/slow/wedge injectors, WAL fault mixes.

:mod:`repro.durability.faults` injects faults at single filesystem
operations — precise, but aimed at one store.  This module composes those
primitives into *service-level* chaos for the supervised sharded service:

* :class:`ChaosController` + :class:`ChaosSketch` interpose on each shard's
  apply path (outside the :class:`~repro.durability.DurableSketch`, so
  snapshots and WAL framing are untouched) and fire scheduled
  :class:`ChaosEvent`\\ s once a shard has applied enough items:

  - ``kill`` — raise :class:`~repro.durability.SimulatedCrash` *before*
    the batch reaches the WAL: the worker is poisoned, the batch is pushed
    back, and the supervisor must rebuild the shard without losing it;
  - ``slow`` — sleep inside the apply, stretching queue waits and
    exercising backpressure deadlines;
  - ``wedge`` — a long sleep while holding the shard's apply lock, so
    concurrent queries hit their per-shard call timeout and degrade.

* :class:`ChaosFilesystem` extends
  :class:`~repro.durability.FaultyFilesystem` with *rate-based* injected
  I/O errors on WAL appends/fsyncs (seeded, deterministic), composing
  mid-log faults with the sketch-level events above.

* :func:`random_schedule` draws a reproducible event schedule, and
  :func:`run_soak` drives ingest + degraded queries through it, then
  disarms the chaos, drains, and checks exact recovery — every
  acknowledged item applied, every shard state-identical to a fault-free
  replay of its sub-stream — returning a report whose JSONL trace is the
  CI artifact on failure.

Every event fired is counted (``service_chaos_events_total``, by kind) and
logged with its shard, item offset, and wall time, so a failing soak run
is replayable from its trace alone.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import apply_stream_batch
from repro.durability.faults import FaultyFilesystem, InjectedIOError, SimulatedCrash
from repro.telemetry.registry import TELEMETRY as _TEL

#: Event kinds understood by :class:`ChaosController`.
CHAOS_KINDS = ("kill", "slow", "wedge")

_TEL.registry.declare(
    "service_chaos_events_total",
    "counter",
    "Chaos-harness events fired against shard workers, by kind.",
)


@dataclass
class ChaosEvent:
    """One scheduled fault against one shard's apply path.

    Attributes
    ----------
    kind:
        ``"kill"`` (poison the worker pre-WAL), ``"slow"`` (sleep
        ``duration`` inside the apply), or ``"wedge"`` (like slow, but
        sized to overrun query call timeouts — the distinction is the
        intent recorded in the trace, the mechanism is the same sleep).
    shard:
        Target shard index.
    at_items:
        Fire once the shard's injector has seen at least this many items
        (cumulative, including the triggering batch).
    duration:
        Sleep seconds for ``slow``/``wedge`` (ignored by ``kill``).
    fired:
        Set by the controller when the event is consumed; each event fires
        exactly once.
    """

    kind: str
    shard: int
    at_items: int
    duration: float = 0.0
    fired: bool = field(default=False, compare=False)

    def __post_init__(self):
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"kind must be one of {CHAOS_KINDS}, got {self.kind!r}")


class ChaosController:
    """Owns a chaos schedule and fires events from shard apply paths.

    Wire into a service with ``sketch_wrapper=controller.wrap`` — the
    wrapper survives rebuilds, so a rebuilt shard keeps its injector and
    the *remaining* schedule (fired events never repeat; a rebuild's
    recovery replay runs against the durable store directly and is never
    re-killed by an already-consumed event).

    Thread-safe: shard workers call :meth:`before_apply` concurrently.
    """

    def __init__(self, schedule: Sequence[ChaosEvent] = ()):
        self.events: List[ChaosEvent] = list(schedule)
        self.enabled = True
        self.log: List[dict] = []
        self._lock = threading.Lock()
        self._items_seen = {}
        self._epoch = time.monotonic()

    def wrap(self, shard: int, sketch: Any) -> "ChaosSketch":
        """The service ``sketch_wrapper`` hook: interpose on one shard."""
        return ChaosSketch(shard, sketch, self)

    def disarm(self) -> None:
        """Stop firing events (the soak's recovery/verification phase)."""
        self.enabled = False

    def remaining(self) -> int:
        """Events not yet fired."""
        return sum(1 for event in self.events if not event.fired)

    def record(self, kind: str, **payload) -> None:
        """Append one entry to the trace log (thread-safe)."""
        entry = {"kind": kind, "t": time.monotonic() - self._epoch}
        entry.update(payload)
        with self._lock:
            self.log.append(entry)

    def write_trace(self, path) -> None:
        """Dump the trace log as JSONL (the CI failure artifact)."""
        with open(path, "w") as file:
            for entry in self.log:
                file.write(json.dumps(entry) + "\n")

    def before_apply(self, shard: int, items: int) -> None:
        """Called by :class:`ChaosSketch` before each batch apply.

        Fires at most one due event per call (a kill aborts the apply
        anyway; a second due sleep waits for the next batch).
        """
        if not self.enabled:
            return
        fired = None
        with self._lock:
            total = self._items_seen.get(shard, 0) + items
            self._items_seen[shard] = total
            for event in self.events:
                if event.fired or event.shard != shard or event.at_items > total:
                    continue
                event.fired = True
                fired = event
                break
        if fired is None:
            return
        self.record(
            "event",
            event=fired.kind,
            shard=shard,
            at_items=fired.at_items,
            duration=fired.duration,
        )
        if _TEL.enabled:
            _TEL.counter("service_chaos_events_total", kind=fired.kind).inc()
        if fired.kind == "kill":
            raise SimulatedCrash(
                f"chaos kill: shard {shard} at item {fired.at_items}"
            )
        time.sleep(fired.duration)


class ChaosSketch:
    """Wraps one shard's sketch; consults the controller before each apply.

    Sits *outside* a :class:`~repro.durability.DurableSketch`: a kill
    fires before the batch is WAL-logged, so the worker's push-back
    salvage plus the supervisor's redirect replay must reproduce it — the
    property the soak test asserts.  Everything else (queries, ``wal``,
    ``flush``, ``stats``) delegates to the wrapped sketch.
    """

    def __init__(self, shard: int, inner: Any, controller: ChaosController):
        self._shard = shard
        self._inner = inner
        self._controller = controller

    def update_batch(self, values, timestamps, weights=None) -> None:
        """Apply one batch through the wrapped sketch, chaos permitting."""
        self._controller.before_apply(self._shard, len(values))
        apply_stream_batch(self._inner, values, timestamps, weights)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)


class _ProcessChaosMonitor:
    """Fires chaos events against process-backend shards, from the parent.

    The in-apply-path :class:`ChaosSketch` injector does not survive the
    process backend: each worker child would inherit its *own copy* of
    the controller at fork time, so ``fired`` flags would not be shared
    and a rebuilt child would re-fire consumed events.  Instead the
    parent watches each shard's (parent-side) applied-item count and
    fires due events from outside:

    * ``kill`` — ``SIGKILL`` the worker child.  Harsher than the thread
      backend's pre-WAL :class:`~repro.durability.SimulatedCrash`: the
      signal can land mid-WAL-append, so the soak also exercises the
      parent's on-disk landed-or-not verification and torn-tail
      recovery.
    * ``slow`` / ``wedge`` — a blocking ``sleep`` RPC occupies the
      child's command loop, stretching applies (backpressure) and
      stalling queries into their call timeout (degraded mode) — the
      same observable effects as sleeping under the thread backend's
      apply lock.

    Events are consumed from the shared :class:`ChaosController`
    schedule (same ``fired``-once semantics, same trace log, same
    ``service_chaos_events_total`` counter) and :meth:`ChaosController.
    disarm` stops the monitor's firing exactly like the thread path.
    """

    def __init__(self, service, controller: ChaosController,
                 poll_interval: float = 0.02):
        self._service = service
        self._controller = controller
        self._poll = poll_interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="chaos-process-monitor", daemon=True
        )

    def start(self) -> None:
        """Start the monitor thread."""
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the monitor thread."""
        self._stop.set()
        self._thread.join(timeout=10.0)

    def _take_due(self, shard: int, total: int) -> Optional[ChaosEvent]:
        controller = self._controller
        with controller._lock:  # noqa: SLF001 — shared schedule handshake
            for event in controller.events:
                if event.fired or event.shard != shard or event.at_items > total:
                    continue
                event.fired = True
                return event
        return None

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._controller.enabled:
                for shard, worker in enumerate(self._service._workers):
                    total = worker.items_applied + worker.pending_items
                    event = self._take_due(shard, total)
                    if event is None:
                        continue
                    self._controller.record(
                        "event",
                        event=event.kind,
                        shard=shard,
                        at_items=event.at_items,
                        duration=event.duration,
                        pid=worker.pid,
                    )
                    if _TEL.enabled:
                        _TEL.counter(
                            "service_chaos_events_total", kind=event.kind
                        ).inc()
                    if event.kind == "kill":
                        try:
                            os.kill(worker.pid, signal.SIGKILL)
                        except (ProcessLookupError, TypeError):
                            pass  # already dead or mid-rebuild
                    else:
                        rpc = getattr(worker, "_rpc", None)
                        if rpc is not None:
                            try:
                                rpc.call("sleep", {"seconds": event.duration})
                            except Exception:
                                pass  # dead or rebuilding child: event lost
            self._stop.wait(self._poll)


class ChaosFilesystem(FaultyFilesystem):
    """Rate-based WAL I/O errors on top of the kill-point fault plan.

    Each matching operation (by label prefix, default WAL appends and
    fsyncs) independently fails with probability ``error_rate`` using a
    seeded RNG — deterministic per seed, so a failing soak reproduces.
    Composes with a :class:`~repro.durability.FaultPlan` (plan faults
    fire first) and with the sketch-level events of
    :class:`ChaosController`.
    """

    def __init__(
        self,
        plan=None,
        *,
        error_rate: float = 0.0,
        seed: int = 0,
        labels: Tuple[str, ...] = ("append:wal-", "fsync:wal-"),
    ):
        super().__init__(plan)
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1), got {error_rate}")
        self.error_rate = error_rate
        self.labels = tuple(labels)
        self.enabled = True
        self.injected = 0
        self._rng = random.Random(seed)

    def disarm(self) -> None:
        """Stop injecting rate-based errors (plan faults still apply)."""
        self.enabled = False

    def _arm(self, label: str) -> int:
        index = super()._arm(label)
        if (
            self.enabled
            and self.error_rate > 0.0
            and label.startswith(self.labels)
            and self._rng.random() < self.error_rate
        ):
            self.injected += 1
            raise InjectedIOError(
                f"chaos: injected I/O error at op {index} ({label})"
            )
        return index


def random_schedule(
    num_shards: int,
    total_items: int,
    *,
    kills: int = 2,
    slows: int = 2,
    wedges: int = 1,
    seed: int = 0,
    slow_duration: float = 0.05,
    wedge_duration: float = 0.4,
) -> List[ChaosEvent]:
    """Draw a reproducible chaos schedule for ``num_shards`` shards.

    Event item-offsets are per-shard counts (that is what the injector
    sees), drawn from the middle 80% of the expected sub-stream length
    ``total_items / num_shards`` so every event lands while its shard is
    still ingesting; shards are drawn uniformly and the same ``seed``
    always yields the same schedule.
    """
    rng = random.Random(seed)
    per_shard = max(1, total_items // max(1, num_shards))
    low = max(1, per_shard // 10)
    high = max(low + 1, (9 * per_shard) // 10)
    events: List[ChaosEvent] = []
    for kind, count, duration in (
        ("kill", kills, 0.0),
        ("slow", slows, slow_duration),
        ("wedge", wedges, wedge_duration),
    ):
        for _ in range(count):
            events.append(
                ChaosEvent(
                    kind=kind,
                    shard=rng.randrange(num_shards),
                    at_items=rng.randrange(low, high),
                    duration=duration,
                )
            )
    events.sort(key=lambda event: (event.shard, event.at_items))
    return events


def run_soak(
    directory,
    factory: Callable[[], Any],
    keys,
    timestamps,
    *,
    num_shards: int = 4,
    seed: int = 13,
    backend: str = "thread",
    arrival_batch: int = 100,
    schedule: Optional[Sequence[ChaosEvent]] = None,
    chaos_seed: int = 0,
    wal_error_rate: float = 0.0,
    block_timeout: float = 5.0,
    call_timeout: float = 0.25,
    query_every: int = 8,
    probe_keys: Sequence = (),
    durable_options: Optional[dict] = None,
    supervisor_options: Optional[dict] = None,
    fingerprint: Optional[Callable[[Any], Any]] = None,
    trace_path=None,
    drain_timeout: float = 60.0,
    poller=None,
    alert_engine=None,
    auditor=None,
) -> dict:
    """Hammer a supervised durable service through a chaos schedule.

    Ingests ``keys``/``timestamps`` in ``arrival_batch`` slices against a
    ``supervise=True``, ``partial="allow"`` service whose shards carry
    :class:`ChaosSketch` injectors and whose filesystem injects WAL I/O
    errors at ``wal_error_rate``; every ``query_every`` batches it issues
    degraded-tolerant point queries over ``probe_keys`` and sanity-checks
    any attached certificate.  After the stream, chaos is disarmed, the
    service drains, and the run verifies

    With ``backend="process"`` the same schedule is driven by a
    parent-side :class:`_ProcessChaosMonitor` instead of in-apply-path
    injectors: kills become real ``SIGKILL``\\ s of the worker children
    (which may land mid-WAL-append — a strictly harsher crash than the
    thread backend's pre-WAL abort), slow/wedge become blocking ``sleep``
    RPCs occupying the child's command loop, and per-shard verification
    fetches recovered state over the ``get_state`` RPC.  Rate-based WAL
    errors then fire inside each child (every child forks its own copy of
    the seeded filesystem), so the report's ``wal_errors_injected`` stays
    0 even though faults were injected and recovered from.

    * **no lost acks** — every acknowledged item is applied: each shard's
      item count equals its (offline-reconstructed) sub-stream length;
    * **exact recovery** — with ``fingerprint`` given, each rebuilt
      shard's state equals a fault-free replay of its sub-stream
      (bit-identical, e.g. compare raw counter arrays);
    * **bounded producer waits** — no ingest call blocked longer than
      ``block_timeout`` plus scheduling slack.

    Returns a report dict (``ok``, ``anomalies``, timings, event/rebuild
    counts); when ``trace_path`` is given the full event trace (plus
    anomalies) is written there as JSONL regardless of outcome.

    The watcher layer rides along when attached: ``poller`` (a
    :class:`~repro.telemetry.MetricPoller`) is ticked after every
    arrival batch and once after healing — each tick also drives
    ``alert_engine`` (a :class:`~repro.telemetry.AlertEngine`), whose
    per-rule peak states and final states land in the report's
    ``"alerts"`` entry; ``auditor`` (an
    :class:`~repro.telemetry.AccuracyAuditor`) shadow-records the whole
    stream and replays an audit round after recovery (report key
    ``"audit"``).  A kill schedule thus demonstrably drives the
    ``shard_unhealthy`` rule ``ok -> firing -> ok`` across one soak.
    """
    from repro.service.router import ShardRouter
    from repro.service.service import ShardedSketchService
    from repro.service.worker import BackpressureError, ShardFailedError

    keys = np.asarray(keys)
    timestamps = np.asarray(timestamps)
    controller = ChaosController(
        schedule
        if schedule is not None
        else random_schedule(num_shards, int(keys.size), seed=chaos_seed)
    )
    fs = ChaosFilesystem(error_rate=wal_error_rate, seed=chaos_seed)
    sup_options = {
        "max_rebuilds": 50,
        "backoff_base": 0.01,
        "backoff_cap": 0.2,
        "redirect_timeout": block_timeout,
        "poll_interval": 0.02,
    }
    sup_options.update(supervisor_options or {})
    anomalies: List[str] = []
    certificates = 0
    max_ingest_seconds = 0.0
    service = ShardedSketchService(
        factory,
        num_shards,
        seed=seed,
        backend=backend,
        directory=directory,
        fs=fs,
        durable_options=dict(durable_options or {"fsync_policy": "always"}),
        supervise=True,
        supervisor_options=sup_options,
        sketch_wrapper=controller.wrap if backend == "thread" else None,
        block_timeout=block_timeout,
        call_timeout=call_timeout,
        partial="allow",
    )
    if auditor is not None:
        service.attach_auditor(auditor)
    alert_peaks: dict = {}
    audit_report = alert_report = None

    def watch_tick() -> None:
        if poller is not None:
            poller.tick()
        elif alert_engine is not None:
            alert_engine.evaluate()
        if alert_engine is not None:
            status = alert_engine.status()
            rank = {"ok": 0, "pending": 1, "firing": 2}
            for entry in status["rules"]:
                seen = alert_peaks.get(entry["name"], "ok")
                if rank[entry["state"]] > rank[seen]:
                    alert_peaks[entry["name"]] = entry["state"]

    monitor = None
    if backend == "process":
        monitor = _ProcessChaosMonitor(service, controller)
        monitor.start()
    try:
        for batch_index, start in enumerate(range(0, keys.size, arrival_batch)):
            part_keys = keys[start : start + arrival_batch]
            part_ts = timestamps[start : start + arrival_batch]
            for attempt in range(10):
                begin = time.monotonic()
                try:
                    service.ingest_batch(part_keys, part_ts)
                    elapsed = time.monotonic() - begin
                    max_ingest_seconds = max(max_ingest_seconds, elapsed)
                    break
                except BackpressureError:
                    elapsed = time.monotonic() - begin
                    max_ingest_seconds = max(max_ingest_seconds, elapsed)
                    controller.record("backpressure", batch=batch_index)
                    time.sleep(0.05)
                except ShardFailedError as exc:
                    anomalies.append(
                        f"circuit opened during ingest (batch {batch_index}): "
                        f"{exc}"
                    )
                    attempt = None
                    break
            else:
                anomalies.append(f"batch {batch_index} never accepted")
                break
            if attempt is None:
                break
            # deadline honesty: a blocking submit may legitimately take up
            # to one deadline per shard sub-batch, but never unboundedly
            if elapsed > (block_timeout + 1.0) * num_shards:
                anomalies.append(
                    f"ingest batch {batch_index} blocked {elapsed:.2f}s "
                    f"(deadline {block_timeout:g}s x {num_shards} shards)"
                )
            watch_tick()
            if probe_keys and batch_index % query_every == query_every - 1:
                now = float(part_ts[-1])
                for key in probe_keys:
                    answer, plan = service.estimate_at(
                        key, now, explain=True
                    )
                    certificate = plan.certificate
                    if certificate is None:
                        continue
                    certificates += 1
                    covered = set(certificate.covered_shards)
                    missing = set(certificate.missing_shards)
                    if covered & missing or (covered | missing) - set(
                        range(num_shards)
                    ):
                        anomalies.append(
                            f"certificate shard sets inconsistent: {certificate}"
                        )
                    if not 0.0 <= certificate.covered_fraction <= 1.0:
                        anomalies.append(
                            f"certificate fraction out of range: {certificate}"
                        )
                    if certificate.widened_error_bound < certificate.error_bound:
                        anomalies.append(
                            f"certificate narrowed its bound: {certificate}"
                        )
                    controller.record(
                        "certificate",
                        key=int(key),
                        covered=sorted(covered),
                        missing=sorted(missing),
                        fraction=certificate.covered_fraction,
                    )
        # submission is asynchronous: settle the stream *under* chaos so
        # every event whose offset the stream reaches actually fires (the
        # chaos window covers application, not just submission) ...
        try:
            service.drain(timeout=drain_timeout)
        except ShardFailedError as exc:
            anomalies.append(f"circuit opened while settling under chaos: {exc}")
        # ... then recovery phase: no new faults, supervisor finishes healing
        controller.disarm()
        fs.disarm()
        try:
            if not service.drain(timeout=drain_timeout):
                anomalies.append(
                    f"drain did not complete within {drain_timeout:g}s"
                )
        except ShardFailedError:
            # a fault on the last batches can surface here; the healthy
            # wait below gives the supervisor its bounded window to heal
            pass
        # healing is asynchronous: a fault on the final batch can leave the
        # supervisor mid-rebuild even though every item is durable and
        # applied — give it a bounded window to flip back to HEALTHY
        deadline = time.monotonic() + drain_timeout
        health = service.health()
        while not health["healthy"] and time.monotonic() < deadline:
            time.sleep(0.02)
            health = service.health()
        if not health["healthy"]:
            anomalies.append(f"service not healthy after recovery: {health}")
        else:
            # healed mid-drain: one more settle so redirect replay and any
            # salvaged sub-batches are fully applied before verification
            try:
                if not service.drain(timeout=drain_timeout):
                    anomalies.append(
                        f"drain did not complete within {drain_timeout:g}s"
                    )
            except ShardFailedError as exc:
                anomalies.append(f"shard failed after recovery: {exc}")
        router = ShardRouter(num_shards, mode="hash", seed=seed)
        shard_of = router.shards_of(keys)
        for shard in range(num_shards):
            worker = service._workers[shard]
            sub_keys = keys[shard_of == shard]
            sub_ts = timestamps[shard_of == shard]
            if worker.backend == "process":
                try:
                    recovered = worker.sketch_state()
                except Exception as exc:
                    anomalies.append(
                        f"shard {shard} state fetch failed: {exc}"
                    )
                    continue
            else:
                recovered = worker.sketch
                if isinstance(recovered, ChaosSketch):
                    recovered = recovered._inner
                recovered = getattr(recovered, "sketch", recovered)  # DurableSketch
            applied = worker.items_applied
            if applied != sub_keys.size:
                anomalies.append(
                    f"shard {shard} applied {applied} of {sub_keys.size} "
                    f"acknowledged items"
                )
            if fingerprint is not None:
                reference = factory()
                reference.update_batch(sub_keys, sub_ts)
                got = fingerprint(recovered)
                want = fingerprint(reference)
                if not _fingerprints_equal(got, want):
                    anomalies.append(
                        f"shard {shard} state differs from fault-free replay"
                    )
        supervisor_stats = service._supervisor.stats()
        rebuilds = sum(entry["rebuilds"] for entry in supervisor_stats.values())
        # the healed tick: rules tripped by kills should come back to ok
        watch_tick()
        if auditor is not None:
            audit_report = auditor.run_audit(queries=32)
        if alert_engine is not None:
            final = {
                entry["name"]: entry["state"]
                for entry in alert_engine.status()["rules"]
            }
            alert_report = {
                "peak_states": dict(alert_peaks),
                "final_states": final,
                "fired": sorted(
                    name for name, peak in alert_peaks.items()
                    if peak == "firing"
                ),
            }
    finally:
        if monitor is not None:
            monitor.stop()
        service.close(force=True)
    for anomaly in anomalies:
        controller.record("anomaly", detail=anomaly)
    if trace_path is not None:
        controller.write_trace(trace_path)
    report = {
        "ok": not anomalies,
        "anomalies": anomalies,
        "events_fired": sum(1 for event in controller.events if event.fired),
        "events_total": len(controller.events),
        "wal_errors_injected": fs.injected,
        "rebuilds": rebuilds,
        "certificates": certificates,
        "max_ingest_seconds": max_ingest_seconds,
        "supervisor": supervisor_stats,
    }
    if alert_engine is not None:
        report["alerts"] = alert_report
    if auditor is not None:
        report["audit"] = audit_report
    return report


def _fingerprints_equal(got, want) -> bool:
    """Compare fingerprints, treating array-likes elementwise."""
    if isinstance(got, np.ndarray) or isinstance(want, np.ndarray):
        return bool(np.array_equal(got, want))
    if isinstance(got, (tuple, list)) and isinstance(want, (tuple, list)):
        return len(got) == len(want) and all(
            _fingerprints_equal(g, w) for g, w in zip(got, want)
        )
    return bool(got == want)
