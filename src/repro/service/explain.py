"""Structured explain plans for sharded historical queries.

``explain=True`` on :meth:`repro.service.QueryCoordinator.query` (and the
typed query methods of :class:`~repro.service.ShardedSketchService`) returns
the answer *plus* a :class:`QueryPlan` describing how it was produced: per
shard, which checkpoints or merge-tree blocks were read (via the plan hooks
``plan_at``/``plan_since`` on :class:`~repro.core.CheckpointChain` and
:class:`~repro.core.MergeTreePersistence`), how many sealed snapshots vs.
live partials the read touched, the error bound each shard contributed,
whether the answer came from the coordinator cache, and wall times.

Plan hooks compute the *same* cover the query itself reads (they share the
resolution code paths), so a plan is a faithful account, not a guess —
``tests/service/test_explain.py`` property-checks this against the
structures' actual contents.  Structures without a hook (plain streaming
sketches, samplers) still get per-shard wall times; their ``details`` is
None.

Degraded-mode answers (``partial="allow"`` with one or more shards
unavailable) additionally carry an :class:`ErrorCertificate` on the plan:
which shards the answer covers, the fraction of acknowledged ingest it
represents, and an honestly widened error bound.  ``render()`` prints the
certificate after the per-shard lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: Query method -> (plan hook, index of the time argument in ``args``).
#: ``*_at`` methods resolve against the ATTP prefix cover, ``*_since``
#: against the BITP suffix cover; the time index says which positional
#: argument of the query is the time bound the hook explains.
PLAN_HOOKS = {
    "sketch_at": ("plan_at", 0),
    "sketch_since": ("plan_since", 0),
    "estimate_at": ("plan_at", 1),
    "estimate_since": ("plan_since", 1),
    "estimate_between": ("plan_since", 1),
    "heavy_hitters_at": ("plan_at", 0),
    "heavy_hitters_since": ("plan_since", 0),
    "contains_at": ("plan_at", 1),
    "contains_since": ("plan_since", 1),
    "total_weight_at": ("plan_at", 0),
}


def shard_plan_details(sketch: Any, method: str, args: tuple) -> Optional[dict]:
    """The plan-hook report for ``method(*args)`` on one shard's sketch.

    Returns None when the method has no hook mapping, the time argument is
    missing, or the sketch (or the sketch a ``DurableSketch`` wraps —
    attribute delegation makes this transparent) does not implement the
    hook.  Call under the shard's apply lock, like the query itself.
    """
    mapping = PLAN_HOOKS.get(method)
    if mapping is None:
        return None
    hook_name, time_index = mapping
    if time_index >= len(args):
        return None
    hook = getattr(sketch, hook_name, None)
    if hook is None:
        return None
    return hook(args[time_index])


@dataclass(frozen=True)
class ShardPlan:
    """One shard's contribution to a fan-out query.

    Attributes
    ----------
    shard:
        Shard index.
    wall_seconds:
        Time spent in this shard's call (plan hook + query, under the
        shard's apply lock).
    structure:
        The persistent structure kind (``"checkpoint_chain"``,
        ``"merge_tree"``) when a plan hook reported one, else None.
    details:
        The raw plan-hook report — checkpoints/blocks read, sealed vs.
        live-partial counts, ``error_bound`` — or None when the shard's
        sketch has no hook for the method.
    """

    shard: int
    wall_seconds: float
    structure: Optional[str] = None
    details: Optional[dict] = None

    def as_dict(self) -> dict:
        """JSON-friendly form of this shard plan."""
        return {
            "shard": self.shard,
            "wall_seconds": self.wall_seconds,
            "structure": self.structure,
            "details": self.details,
        }


@dataclass(frozen=True)
class ErrorCertificate:
    """An honest account of what a degraded-mode (partial) answer covers.

    Attached to :class:`QueryPlan` when a ``partial="allow"`` query could
    not consult every shard.  The certificate makes the degradation
    quantitative instead of silent:

    Attributes
    ----------
    covered_shards, missing_shards:
        The shards whose sketches the answer reflects, and the shards that
        were unavailable (poisoned, circuit-open, or past the per-shard
        call timeout).
    reasons:
        One reason string per missing shard, aligned with
        ``missing_shards`` — ``"failed"`` (poisoned or circuit-open) or
        ``"timeout"`` (apply lock not acquired within the call timeout).
    covered_items:
        Items applied by covered shards at read time.
    missing_items:
        Items attributable to missing shards — applied before they went
        down, still queued on the poisoned worker, or parked in a redirect
        buffer awaiting replay.  These are acknowledged items the answer
        does *not* represent.
    covered_fraction:
        ``covered_items / (covered_items + missing_items)`` — the fraction
        of acknowledged ingest the answer represents (1.0 when nothing has
        been ingested at all).
    error_bound:
        Sum of the covered shards' plan-hook error bounds (0.0 when the
        structures expose none).
    widened_error_bound:
        ``error_bound + missing_items`` — for unit-weight frequency
        estimates every missing item can shift a count by at most one, so
        the true answer lies within the covered answer plus this bound.
        For weighted streams scale by the maximum weight.
    """

    covered_shards: Tuple[int, ...]
    missing_shards: Tuple[int, ...]
    reasons: Tuple[str, ...]
    covered_items: int
    missing_items: int
    covered_fraction: float
    error_bound: float
    widened_error_bound: float

    def as_dict(self) -> dict:
        """JSON-friendly form of this certificate."""
        return {
            "covered_shards": list(self.covered_shards),
            "missing_shards": list(self.missing_shards),
            "reasons": list(self.reasons),
            "covered_items": self.covered_items,
            "missing_items": self.missing_items,
            "covered_fraction": self.covered_fraction,
            "error_bound": self.error_bound,
            "widened_error_bound": self.widened_error_bound,
        }

    def render(self) -> str:
        """One-line text rendering (appended by ``QueryPlan.render``)."""
        missing = ", ".join(
            f"{shard}({reason})"
            for shard, reason in zip(self.missing_shards, self.reasons)
        )
        return (
            f"  certificate: covered={list(self.covered_shards)} "
            f"missing=[{missing}] "
            f"fraction={self.covered_fraction:.4f} "
            f"missing_items={self.missing_items} "
            f"widened_error_bound={self.widened_error_bound:g}"
        )


@dataclass(frozen=True)
class QueryPlan:
    """How one coordinator query was answered.

    Attributes
    ----------
    method, args:
        The sketch method fanned out and its positional arguments.
    combine:
        Combiner name (``"sum"``, ``"merge"``, ...; a custom callable's
        ``__name__``).
    shard:
        The single shard targeted (hash-routed point queries), or None for
        a full fan-out.
    watermark:
        The ingest watermark the answer reflects (also the cache key
        component).
    cache_hit:
        True when the answer came from the coordinator's watermark-keyed
        cache — then ``shards`` is empty, since nothing was re-read.
    wall_seconds:
        End-to-end coordinator time (fan-out + combine, or cache lookup).
    shards:
        One :class:`ShardPlan` per shard consulted.
    certificate:
        The :class:`ErrorCertificate` of a degraded-mode answer, or None
        when the answer covers every shard (or came from the cache).
    """

    method: str
    args: Tuple[Any, ...]
    combine: str
    shard: Optional[int]
    watermark: int
    cache_hit: bool
    wall_seconds: float
    shards: Tuple[ShardPlan, ...] = ()
    certificate: Optional[ErrorCertificate] = None

    def sealed_reads(self) -> int:
        """Total sealed checkpoints/blocks read across all shards."""
        return sum(
            plan.details.get("sealed_read", 0)
            for plan in self.shards
            if plan.details is not None
        )

    def live_partials(self) -> int:
        """Total live (unsealed) structures consulted across all shards."""
        return sum(
            plan.details.get("live_partial", 0)
            for plan in self.shards
            if plan.details is not None
        )

    def as_dict(self) -> dict:
        """JSON-friendly form of the whole plan."""
        return {
            "method": self.method,
            "args": list(self.args),
            "combine": self.combine,
            "shard": self.shard,
            "watermark": self.watermark,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
            "shards": [plan.as_dict() for plan in self.shards],
            "certificate": (
                None if self.certificate is None else self.certificate.as_dict()
            ),
        }

    def render(self) -> str:
        """A compact multi-line text rendering (EXPLAIN-style output)."""
        arglist = ", ".join(repr(a) for a in self.args)
        target = "all shards" if self.shard is None else f"shard {self.shard}"
        lines = [
            f"{self.method}({arglist}) -> {target}, combine={self.combine}, "
            f"watermark={self.watermark}, "
            f"cache={'hit' if self.cache_hit else 'miss'}, "
            f"wall={self.wall_seconds * 1e3:.3f}ms"
        ]
        for plan in self.shards:
            if plan.details is None:
                lines.append(
                    f"  shard {plan.shard}: (no plan hook) "
                    f"wall={plan.wall_seconds * 1e3:.3f}ms"
                )
                continue
            d = plan.details
            extra = ""
            if d.get("source") is not None:
                extra = f" source={d['source']}"
                if d.get("checkpoint_timestamp") is not None:
                    extra += f"@t={d['checkpoint_timestamp']}"
            if d.get("blocks") is not None:
                spans_text = ", ".join(
                    f"[{b['start']},{b['end']})" for b in d["blocks"]
                )
                extra = f" blocks=[{spans_text}]"
                if d.get("boundary"):
                    extra += (
                        f" boundary=[{d['boundary']['start']},"
                        f"{d['boundary']['end']})"
                    )
            lines.append(
                f"  shard {plan.shard}: {plan.structure or '?'} "
                f"sealed={d.get('sealed_read', 0)} "
                f"live_partial={d.get('live_partial', 0)} "
                f"error_bound={d.get('error_bound', 0)}"
                f"{extra} wall={plan.wall_seconds * 1e3:.3f}ms"
            )
        if self.certificate is not None:
            lines.append(self.certificate.render())
        return "\n".join(lines)
