"""Multi-tenant serving: a namespaced sketch registry with quotas and spill.

"Millions of users" means millions of *keyspaces*, not one big sketch.
This module turns the single-family :class:`~repro.service
.ShardedSketchService` into a platform: a :class:`TenantRegistry` maps
``tenant_id -> sketch family`` (lazily instantiated from registered
factories), and a :class:`MultiTenantService` facade routes
``ingest_batch(tenant_id, ...)`` / ``query(tenant_id, ...)`` to the
tenant's own sharded service — its own shard workers, watermark, and
durable WAL/snapshot directory — while enforcing the things one memory
envelope demands:

* **quotas** (:mod:`repro.service.quotas`): per-tenant token-bucket update
  rates and resident-byte ceilings, with block / drop / error
  backpressure and exact per-tenant reject accounting
  (``service_tenant_rejects_total``);
* **cold-tenant spill**: tenants are kept resident in an LRU by last
  activity; past ``max_resident_tenants`` or the global
  ``max_resident_bytes`` ceiling the coldest tenants are *spilled* —
  drained, final-snapshotted through the existing durability path, and
  released — then transparently reloaded (snapshot + WAL replay) on the
  next touch, bit-identical;
* **a shared answer cache**: one bounded
  :class:`~repro.service.AnswerCache` spans every tenant, partitioned by
  tenant namespace with fair eviction, and a tenant's partition is
  invalidated on spill/reload (a reloaded service restarts its watermark,
  so stale keys would otherwise collide);
* **per-tenant observability** behind a label-cardinality guard
  (:class:`TenantLabelGuard`): the first ``label_tenants`` tenants get
  their own metric label, the rest roll up into ``__other__`` — a
  100k-tenant fleet cannot blow up the metric registry — plus a
  ``/tenants`` introspection endpoint.

Durability: the root directory holds one ``tenants.json`` registry
manifest (atomic writes through the same filesystem shim the WAL uses)
and a ``tenants/<slug>/`` sharded-service directory per tenant;
:meth:`MultiTenantService.open` restores the registry and recovers each
tenant's shards lazily on first touch.  See docs/TENANCY.md.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, NamedTuple, Optional

from repro.core.batch import StreamBatch
from repro.durability.faults import OsFilesystem
from repro.durability.manifest import read_manifest
from repro.service.coordinator import AnswerCache
from repro.telemetry.server import IntrospectionServer
from repro.service.quotas import (
    QUOTA_REASONS,
    TenantQuota,
    TenantQuotaError,
    UNLIMITED_QUOTA,
)
from repro.service.service import ShardedSketchService
from repro.telemetry.accounting import (
    ComponentMemory,
    MemoryReport,
    publish,
    unpublish,
)
from repro.telemetry.registry import TELEMETRY as _TEL

#: File name of the registry manifest under the service root.
TENANTS_MANIFEST_NAME = "tenants.json"
_FORMAT_VERSION = 1

#: Label value that absorbs every tenant beyond the guard's top-K.
OTHER_LABEL = "__other__"

#: Accountant report-name prefix for per-tenant residency
#: (``memory_resident_bytes{sketch="tenant/<id>"}``).
TENANT_MEMORY_PREFIX = "tenant/"

# Declared at import time so the docs-catalog lint sees the families even
# before any tenant exists; children bind lazily through the label guard.
_INGEST_ITEMS = _TEL.registry.declare(
    "service_tenant_ingest_items_total",
    "counter",
    "Items accepted into tenant sketch families, by tenant (label-guarded).",
)
_REJECTS = _TEL.registry.declare(
    "service_tenant_rejects_total",
    "counter",
    "Quota-rejected ingest batches, by tenant (label-guarded) and reason.",
)
_QUERIES = _TEL.registry.declare(
    "service_tenant_queries_total",
    "counter",
    "Queries answered for tenant sketch families, by tenant (label-guarded).",
)
_SPILLS = _TEL.registry.declare(
    "service_tenant_spills_total",
    "counter",
    "Cold-tenant spills to disk, by tenant (label-guarded).",
)
_RELOADS = _TEL.registry.declare(
    "service_tenant_reloads_total",
    "counter",
    "Cold-tenant reloads from disk, by tenant (label-guarded).",
)
_KNOWN_GAUGE = _TEL.registry.declare(
    "service_tenants_known",
    "gauge",
    "Tenants registered in the tenant registry.",
).labels()
_RESIDENT_GAUGE = _TEL.registry.declare(
    "service_tenants_resident",
    "gauge",
    "Tenants currently resident (live shard workers).",
).labels()
_RESIDENT_BYTES_GAUGE = _TEL.registry.declare(
    "service_tenants_resident_bytes",
    "gauge",
    "Total modelled resident bytes across resident tenants (last measures).",
).labels()


class UnknownTenantError(KeyError):
    """A query or consistency call named a tenant the registry never saw."""

    def __init__(self, tenant_id: str):
        super().__init__(tenant_id)
        self.tenant_id = tenant_id

    def __str__(self) -> str:
        return f"unknown tenant {self.tenant_id!r} (not registered, no data)"


class TenantReceipt(NamedTuple):
    """What happened to one tenant ingest call.

    ``epoch`` is the tenant's residency epoch (bumped on every reload):
    pass the whole receipt to :meth:`MultiTenantService.wait_for` — a
    receipt from an earlier epoch is already fully applied, because spill
    drains everything before releasing the tenant.
    """

    tenant: str
    epoch: int
    seqno: int
    accepted: int
    dropped: int


class TenantLabelGuard:
    """Caps per-tenant metric label cardinality at top-K + ``__other__``.

    The first ``top_k`` distinct tenants that emit a metric get their own
    label value; every later tenant maps to :data:`OTHER_LABEL`.  The
    assignment is first-come-first-served and stable for the guard's
    lifetime — under Zipf traffic the heavy tenants touch first, so "first
    K" and "top K" coincide in practice while staying deterministic.
    Thread-safe.
    """

    def __init__(self, top_k: int = 8):
        if top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {top_k}")
        self.top_k = top_k
        self._assigned: Dict[str, str] = {}
        self._lock = threading.Lock()

    def label(self, tenant_id: str) -> str:
        """The metric label value for ``tenant_id`` (assigning if room)."""
        assigned = self._assigned.get(tenant_id)
        if assigned is not None:
            return assigned
        with self._lock:
            assigned = self._assigned.get(tenant_id)
            if assigned is None:
                assigned = (
                    tenant_id if len(self._assigned) < self.top_k else OTHER_LABEL
                )
                self._assigned[tenant_id] = assigned
            return assigned

    def owns_label(self, tenant_id: str) -> bool:
        """Whether this tenant has its own label (vs the rollup)."""
        return self.label(tenant_id) != OTHER_LABEL

    def labels(self) -> Dict[str, str]:
        """Snapshot of the tenant -> label assignment."""
        with self._lock:
            return dict(self._assigned)

    @property
    def cardinality(self) -> int:
        """Distinct label values handed out so far (<= top_k + 1)."""
        with self._lock:
            return len(set(self._assigned.values()))


def _slugify(tenant_id: str) -> str:
    """A filesystem-safe, collision-free directory name for a tenant id."""
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", tenant_id)[:40] or "t"
    digest = hashlib.blake2b(
        tenant_id.encode("utf-8"), digest_size=4
    ).hexdigest()
    return f"{safe}-{digest}"


class TenantRecord:
    """One tenant's registry entry: identity, quota state, residency.

    ``lock`` serialises every operation touching this tenant (ingest,
    query, spill, reload); the registry/facade map locks are never held
    while waiting on it, so one tenant blocking on backpressure cannot
    stall the others.
    """

    __slots__ = (
        "tenant_id",
        "slug",
        "factory_name",
        "quota",
        "bucket",
        "lock",
        "service",
        "epoch",
        "items_ingested",
        "rejects",
        "items_since_measure",
        "measured_bytes",
        "measured_shards",
        "spills",
        "reloads",
    )

    def __init__(
        self,
        tenant_id: str,
        factory_name: str,
        quota: TenantQuota,
        clock: Callable[[], float],
    ):
        self.tenant_id = tenant_id
        self.slug = _slugify(tenant_id)
        self.factory_name = factory_name
        self.quota = quota
        self.bucket = quota.make_bucket(clock)
        self.lock = threading.RLock()
        self.service: Optional[ShardedSketchService] = None
        self.epoch = 0
        self.items_ingested = 0
        self.rejects = {reason: 0 for reason in QUOTA_REASONS}
        self.items_since_measure = 0
        self.measured_bytes = 0
        self.measured_shards: list = []
        self.spills = 0
        self.reloads = 0

    @property
    def namespace(self) -> str:
        """The tenant's partition in the shared answer cache."""
        return f"tenant:{self.tenant_id}"

    def describe(self) -> dict:
        """JSON-able summary for ``/tenants`` and :meth:`stats`."""
        return {
            "resident": self.service is not None,
            "factory": self.factory_name,
            "epoch": self.epoch,
            "items_ingested": self.items_ingested,
            "rejects": dict(self.rejects),
            "measured_bytes": self.measured_bytes,
            "spills": self.spills,
            "reloads": self.reloads,
            "quota": {
                "rate": self.quota.rate,
                "burst": self.quota.burst,
                "max_resident_bytes": self.quota.max_resident_bytes,
                "policy": self.quota.policy,
            },
        }


class TenantRegistry:
    """The namespaced sketch registry: tenant ids, factories, persistence.

    Maps ``tenant_id -> `` :class:`TenantRecord`, each carrying the name
    of the *registered factory* that builds (and rebuilds, at recovery)
    the tenant's sketch family — factories are registered by name because
    callables cannot be persisted.  With a ``directory`` the registry is
    durable: every registration atomically rewrites ``tenants.json``
    (registration-before-ingest, so a crash can never leave tenant data
    on disk that the registry does not know about), and
    :meth:`TenantRegistry.load` restores the same records — services are
    then re-instantiated lazily by the facade on first touch.
    """

    def __init__(
        self,
        directory=None,
        *,
        fs: Optional[OsFilesystem] = None,
        quota_clock: Callable[[], float] = time.monotonic,
    ):
        self.directory = None if directory is None else Path(directory)
        self.fs = fs or OsFilesystem()
        self._quota_clock = quota_clock
        self._factories: Dict[str, Callable[[], Any]] = {}
        self._records: "OrderedDict[str, TenantRecord]" = OrderedDict()
        self._lock = threading.Lock()

    # -- factories ---------------------------------------------------------

    def register_factory(self, name: str, factory: Callable[[], Any]) -> None:
        """Register (or replace) a named sketch-family factory.

        The factory must be deterministic — same parameters and seed every
        call — because durable recovery replays a tenant's WAL through a
        fresh instance.
        """
        if not name:
            raise ValueError("factory name must be non-empty")
        with self._lock:
            self._factories[name] = factory

    def factory(self, name: str) -> Callable[[], Any]:
        """The factory registered under ``name`` (KeyError if missing)."""
        with self._lock:
            if name not in self._factories:
                raise KeyError(
                    f"no factory {name!r} registered "
                    f"(have {sorted(self._factories)})"
                )
            return self._factories[name]

    def factory_names(self) -> list:
        """Registered factory names, sorted."""
        with self._lock:
            return sorted(self._factories)

    # -- records -----------------------------------------------------------

    def get(self, tenant_id: str) -> Optional[TenantRecord]:
        """The record for ``tenant_id``, or None if never registered."""
        with self._lock:
            return self._records.get(tenant_id)

    def __contains__(self, tenant_id: str) -> bool:
        """Whether ``tenant_id`` is registered."""
        with self._lock:
            return tenant_id in self._records

    def __len__(self) -> int:
        """Registered tenant count."""
        with self._lock:
            return len(self._records)

    def tenant_ids(self) -> list:
        """Registered tenant ids, in registration order."""
        with self._lock:
            return list(self._records)

    def register(
        self,
        tenant_id: str,
        factory: str = "default",
        quota: Optional[TenantQuota] = None,
    ) -> TenantRecord:
        """Register a tenant under a factory name; idempotent.

        Re-registering an existing tenant with the *same* factory returns
        its record unchanged (the quota is not silently replaced — use
        :meth:`set_quota`); a different factory raises, because the
        on-disk WAL/snapshot state would not replay through it.  Durable
        registries persist the updated ``tenants.json`` before returning.
        """
        if not tenant_id:
            raise ValueError("tenant_id must be non-empty")
        with self._lock:
            if factory not in self._factories:
                raise KeyError(
                    f"no factory {factory!r} registered "
                    f"(have {sorted(self._factories)})"
                )
            record = self._records.get(tenant_id)
            if record is not None:
                if record.factory_name != factory:
                    raise ValueError(
                        f"tenant {tenant_id!r} is registered with factory "
                        f"{record.factory_name!r}, cannot re-register with "
                        f"{factory!r}"
                    )
                return record
            record = TenantRecord(
                tenant_id,
                factory,
                quota or UNLIMITED_QUOTA,
                self._quota_clock,
            )
            self._records[tenant_id] = record
        if self.directory is not None:
            self.save()
        return record

    def register_many(
        self,
        tenant_ids,
        factory: str = "default",
        quota: Optional[TenantQuota] = None,
    ) -> int:
        """Bulk-register tenants with a *single* manifest save.

        Per-id semantics match :meth:`register` (idempotent, sticky
        factory); returns the number of newly registered tenants.  Use
        this for large fleets — per-id :meth:`register` rewrites
        ``tenants.json`` every call, which is quadratic in fleet size.
        """
        added = 0
        with self._lock:
            if factory not in self._factories:
                raise KeyError(
                    f"no factory {factory!r} registered "
                    f"(have {sorted(self._factories)})"
                )
            for tenant_id in tenant_ids:
                if not tenant_id:
                    raise ValueError("tenant_id must be non-empty")
                record = self._records.get(tenant_id)
                if record is not None:
                    if record.factory_name != factory:
                        raise ValueError(
                            f"tenant {tenant_id!r} is registered with factory "
                            f"{record.factory_name!r}, cannot re-register "
                            f"with {factory!r}"
                        )
                    continue
                self._records[tenant_id] = TenantRecord(
                    tenant_id,
                    factory,
                    quota or UNLIMITED_QUOTA,
                    self._quota_clock,
                )
                added += 1
        if added and self.directory is not None:
            self.save()
        return added

    def set_quota(self, tenant_id: str, quota: TenantQuota) -> None:
        """Replace a tenant's quota (rebuilding its token bucket)."""
        record = self.get(tenant_id)
        if record is None:
            raise UnknownTenantError(tenant_id)
        with record.lock:
            record.quota = quota
            record.bucket = quota.make_bucket(self._quota_clock)
        if self.directory is not None:
            self.save()

    def tenant_directory(self, record: TenantRecord) -> Path:
        """The tenant's sharded-service directory under the root."""
        if self.directory is None:
            raise RuntimeError("registry is not durable (no directory)")
        return self.directory / "tenants" / record.slug

    # -- persistence -------------------------------------------------------

    def save(self, extra: Optional[dict] = None) -> None:
        """Atomically persist the registry manifest (``tenants.json``)."""
        if self.directory is None:
            raise RuntimeError("registry is not durable (no directory)")
        with self._lock:
            payload = {
                "version": _FORMAT_VERSION,
                "extra": extra if extra is not None else self._loaded_extra(),
                "tenants": {
                    tenant_id: {
                        "slug": record.slug,
                        "factory": record.factory_name,
                        "quota": {
                            k: v
                            for k, v in asdict(record.quota).items()
                            if v is not None
                        },
                    }
                    for tenant_id, record in self._records.items()
                },
            }
        self.directory.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        self.fs.write_atomic(
            self.directory / TENANTS_MANIFEST_NAME, text.encode("utf-8")
        )
        self._extra = payload["extra"]

    def _loaded_extra(self) -> dict:
        return getattr(self, "_extra", {}) or {}

    @property
    def extra(self) -> dict:
        """Facade-owned settings stored alongside the registry (topology)."""
        return self._loaded_extra()

    def load(self) -> dict:
        """Restore records from ``tenants.json``; returns the extra dict.

        Loaded tenants are all cold (``service is None``) — the facade
        reloads them lazily on first touch.  Records already registered
        in this process are kept (load merges, disk wins on quota).
        """
        if self.directory is None:
            raise RuntimeError("registry is not durable (no directory)")
        path = self.directory / TENANTS_MANIFEST_NAME
        if not path.exists():
            return {}
        try:
            payload = json.loads(path.read_text("utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt tenant manifest at {path}: {exc}") from exc
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported tenant manifest version "
                f"{payload.get('version')!r} at {path}"
            )
        with self._lock:
            for tenant_id, entry in payload.get("tenants", {}).items():
                quota = TenantQuota(**entry.get("quota", {}))
                record = self._records.get(tenant_id)
                if record is None:
                    record = TenantRecord(
                        tenant_id,
                        entry["factory"],
                        quota,
                        self._quota_clock,
                    )
                    record.slug = entry["slug"]
                    self._records[tenant_id] = record
        self._extra = payload.get("extra", {}) or {}
        return self._extra


class MultiTenantService:
    """One service, many tenants: the facade in front of the registry.

    Each tenant gets its own :class:`~repro.service.ShardedSketchService`
    (shard workers, watermark, durable WAL/snapshot directory), built
    lazily from the tenant's registered factory on first touch.  The
    facade adds the platform concerns:

    * **quotas** — every :meth:`ingest_batch` passes the tenant's
      :class:`~repro.service.TenantQuota` (token-bucket rate, resident
      bytes) with block/drop/error backpressure and exact per-tenant
      reject accounting;
    * **bounded residency** — at most ``max_resident_tenants`` live
      services and ``max_resident_bytes`` total modelled bytes; colder
      tenants (LRU by last activity) are spilled to disk through the
      normal close path and transparently reloaded on next touch;
    * **a shared, partitioned answer cache** — one
      :class:`~repro.service.AnswerCache` of ``cache_capacity`` entries
      across all tenants, keyed by tenant namespace so answers can never
      cross tenants, evicting from the largest partition first;
    * **guarded observability** — per-tenant counters behind a
      :class:`TenantLabelGuard` (``label_tenants`` own labels, the rest
      ``__other__``), per-tenant memory-accountant reports, and a
      ``/tenants`` endpoint on :meth:`serve_introspection`.

    With a ``directory`` the whole platform is durable: ``tenants.json``
    plus one service directory per tenant, restored by :meth:`open` with
    every tenant cold until touched.  Thread-safe; per-tenant operations
    serialise on the tenant's record lock only, so tenants make progress
    independently.
    """

    def __init__(
        self,
        factory: Optional[Callable[[], Any]] = None,
        *,
        factories: Optional[Dict[str, Callable[[], Any]]] = None,
        directory=None,
        num_shards: int = 1,
        partition: str = "hash",
        seed: int = 0,
        backend: str = "thread",
        default_quota: Optional[TenantQuota] = None,
        auto_register: bool = True,
        max_resident_tenants: Optional[int] = None,
        max_resident_bytes: Optional[int] = None,
        cache_capacity: int = 1024,
        label_tenants: int = 8,
        accounting_interval: int = 4096,
        fs: Optional[OsFilesystem] = None,
        durable_options: Optional[dict] = None,
        service_options: Optional[dict] = None,
        quota_clock: Callable[[], float] = time.monotonic,
    ):
        if factory is None and not factories:
            raise ValueError(
                "register at least one factory (factory= or factories=)"
            )
        if directory is None and (
            max_resident_tenants is not None or max_resident_bytes is not None
        ):
            raise ValueError(
                "resident ceilings need a directory to spill cold tenants to"
            )
        if max_resident_tenants is not None and max_resident_tenants < 1:
            raise ValueError(
                f"max_resident_tenants must be >= 1, got {max_resident_tenants}"
            )
        if max_resident_bytes is not None and max_resident_bytes <= 0:
            raise ValueError(
                f"max_resident_bytes must be > 0, got {max_resident_bytes}"
            )
        if accounting_interval < 1:
            raise ValueError(
                f"accounting_interval must be >= 1, got {accounting_interval}"
            )
        self._registry = TenantRegistry(
            directory, fs=fs, quota_clock=quota_clock
        )
        if factory is not None:
            self._registry.register_factory("default", factory)
        for name, fn in (factories or {}).items():
            self._registry.register_factory(name, fn)
        self.default_factory_name = (
            "default" if factory is not None else sorted(factories)[0]
        )
        self.num_shards = num_shards
        self.partition = partition
        self.seed = seed
        self.backend = backend
        self.durable = directory is not None
        self.auto_register = auto_register
        self.max_resident_tenants = max_resident_tenants
        self.max_resident_bytes = max_resident_bytes
        self.accounting_interval = accounting_interval
        self._default_quota = default_quota
        self._fs = fs
        self._durable_options = durable_options
        self._service_options = dict(service_options or {})
        self._cache = AnswerCache(cache_capacity)
        self._guard = TenantLabelGuard(label_tenants)
        self._resident: "OrderedDict[str, TenantRecord]" = OrderedDict()
        self._lock = threading.Lock()
        self._closed = False
        self._auditor = None
        topology = {
            "num_shards": num_shards,
            "partition": partition,
            "seed": seed,
            "backend": backend,
        }
        if self.durable:
            stored = self._registry.load()
            if stored and (
                stored.get("num_shards"),
                stored.get("partition"),
                stored.get("seed"),
            ) != (num_shards, partition, seed):
                raise ValueError(
                    f"tenant manifest at {directory} records topology "
                    f"({stored.get('num_shards')}, {stored.get('partition')!r}, "
                    f"{stored.get('seed')}), got ({num_shards}, {partition!r}, "
                    f"{seed}) — use MultiTenantService.open to adopt it"
                )
            self._registry._extra = topology
            # persist immediately so a zero-tenant root still records its
            # topology and later constructions are validated against it
            self._registry.save()
        if _TEL.enabled:
            _KNOWN_GAUGE.set(len(self._registry))

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(cls, directory, **options) -> "MultiTenantService":
        """Reopen a durable multi-tenant root, adopting the stored topology.

        Reads ``tenants.json`` for the per-tenant shard topology and the
        registered tenants; every tenant starts cold and recovers
        (snapshot + WAL-tail replay) on its first touch.  Factories must
        be re-registered — pass ``factory=`` / ``factories=`` exactly as
        at first construction (callables are not persisted).
        """
        path = Path(directory) / TENANTS_MANIFEST_NAME
        if not path.exists():
            raise FileNotFoundError(f"no tenant manifest under {directory}")
        payload = json.loads(path.read_text("utf-8"))
        stored = payload.get("extra", {}) or {}
        for key in ("num_shards", "partition", "seed", "backend"):
            if key in stored:
                options.setdefault(key, stored[key])
        return cls(directory=directory, **options)

    def close(self, force: bool = False) -> None:
        """Close every resident tenant service (drain + final snapshot).

        Durable state stays on disk for :meth:`open`.  With
        ``force=True`` per-tenant close failures are tolerated; otherwise
        the first failure is re-raised after the remaining tenants close.
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            records = list(self._resident.values())
            self._resident.clear()
        first_error: Optional[BaseException] = None
        for record in records:
            with record.lock:
                service = record.service
                if service is None:
                    continue
                record.service = None
                try:
                    service.close(force=force)
                except BaseException as exc:  # noqa: BLE001 - close all first
                    if first_error is None:
                        first_error = exc
                self._cache.drop_namespace(record.namespace)
        if _TEL.enabled:
            _RESIDENT_GAUGE.set(0)
            _RESIDENT_BYTES_GAUGE.set(0)
        if first_error is not None and not force:
            raise first_error

    def __enter__(self) -> "MultiTenantService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(force=exc_type is not None)

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("MultiTenantService is closed")

    # -- registry passthrough ----------------------------------------------

    @property
    def registry(self) -> TenantRegistry:
        """The underlying :class:`TenantRegistry`."""
        return self._registry

    @property
    def cache(self) -> AnswerCache:
        """The shared, tenant-partitioned :class:`AnswerCache`."""
        return self._cache

    @property
    def label_guard(self) -> TenantLabelGuard:
        """The metric label-cardinality guard."""
        return self._guard

    def register_factory(self, name: str, factory: Callable[[], Any]) -> None:
        """Register a named sketch-family factory (see the registry)."""
        self._registry.register_factory(name, factory)

    def register_tenant(
        self,
        tenant_id: str,
        factory: Optional[str] = None,
        quota: Optional[TenantQuota] = None,
    ) -> None:
        """Register a tenant explicitly (idempotent; durable if rooted).

        ``factory`` defaults to the facade's default factory; ``quota``
        to the facade's ``default_quota``.  Registration is cheap — no
        service is built until the tenant's first ingest or query.
        """
        self._ensure_open()
        self._registry.register(
            tenant_id,
            factory or self.default_factory_name,
            quota if quota is not None else self._default_quota,
        )
        if _TEL.enabled:
            _KNOWN_GAUGE.set(len(self._registry))

    def register_tenants(
        self,
        tenant_ids,
        factory: Optional[str] = None,
        quota: Optional[TenantQuota] = None,
    ) -> int:
        """Bulk-register a fleet with one manifest save; returns new count.

        The per-tenant semantics match :meth:`register_tenant`; prefer
        this when seeding thousands of tenants — the per-id path
        persists ``tenants.json`` on every call.
        """
        self._ensure_open()
        added = self._registry.register_many(
            tenant_ids,
            factory or self.default_factory_name,
            quota if quota is not None else self._default_quota,
        )
        if _TEL.enabled:
            _KNOWN_GAUGE.set(len(self._registry))
        return added

    def set_quota(self, tenant_id: str, quota: TenantQuota) -> None:
        """Replace a tenant's quota (takes effect on the next ingest)."""
        self._registry.set_quota(tenant_id, quota)

    def known_tenants(self) -> list:
        """Every registered tenant id, in registration order."""
        return self._registry.tenant_ids()

    def resident_tenants(self) -> list:
        """Resident tenant ids, coldest (next to spill) first."""
        with self._lock:
            return list(self._resident)

    # -- residency ---------------------------------------------------------

    def _resolve(self, tenant_id: str, create: bool) -> TenantRecord:
        record = self._registry.get(tenant_id)
        if record is None:
            if not create:
                raise UnknownTenantError(tenant_id)
            record = self._registry.register(
                tenant_id, self.default_factory_name, self._default_quota
            )
            if _TEL.enabled:
                _KNOWN_GAUGE.set(len(self._registry))
        return record

    def _build_service(self, record: TenantRecord) -> ShardedSketchService:
        factory = self._registry.factory(record.factory_name)
        kwargs = dict(self._service_options)
        kwargs.update(
            partition=self.partition,
            seed=self.seed,
            backend=self.backend,
            cache=self._cache,
            cache_namespace=record.namespace,
        )
        if self.durable:
            tenant_dir = self._registry.tenant_directory(record)
            kwargs.update(directory=tenant_dir, fs=self._fs)
            if self._durable_options is not None:
                kwargs.update(durable_options=dict(self._durable_options))
        return ShardedSketchService(factory, self.num_shards, **kwargs)

    def _ensure_resident(self, record: TenantRecord) -> ShardedSketchService:
        # caller holds record.lock
        if record.service is None:
            reloading = False
            if self.durable:
                tenant_dir = self._registry.tenant_directory(record)
                reloading = read_manifest(tenant_dir) is not None
            record.service = self._build_service(record)
            record.epoch += 1
            if reloading:
                record.reloads += 1
                # a reloaded service restarts its watermark at 0: cached
                # answers from the previous residency would collide with
                # the new watermark keys and serve stale data
                self._cache.drop_namespace(record.namespace)
                if _TEL.enabled:
                    _RELOADS.labels(
                        tenant=self._guard.label(record.tenant_id)
                    ).inc()
            self._measure_locked(record)
        with self._lock:
            self._resident[record.tenant_id] = record
            self._resident.move_to_end(record.tenant_id)
            if _TEL.enabled:
                _RESIDENT_GAUGE.set(len(self._resident))
        return record.service

    def _measure_locked(self, record: TenantRecord) -> None:
        # caller holds record.lock; service is resident
        sizes = record.service.resident_bytes(per_shard=True)
        record.measured_shards = sizes
        record.measured_bytes = sum(sizes)
        record.items_since_measure = 0

    def _spill_locked(self, record: TenantRecord) -> bool:
        # caller holds record.lock
        service = record.service
        if service is None:
            return False
        # close() flushes any staged ingest buffer, drains the shard
        # queues, snapshots, and closes the WALs — the tenant's state is
        # fully durable before we let go of it
        service.close()
        record.service = None
        record.spills += 1
        self._cache.drop_namespace(record.namespace)
        unpublish(TENANT_MEMORY_PREFIX + record.tenant_id)
        if _TEL.enabled:
            _SPILLS.labels(tenant=self._guard.label(record.tenant_id)).inc()
        with self._lock:
            self._resident.pop(record.tenant_id, None)
            if _TEL.enabled:
                _RESIDENT_GAUGE.set(len(self._resident))
        return True

    def spill(self, tenant_id: str) -> bool:
        """Spill one tenant to disk now; False if it was already cold.

        The tenant reloads transparently — snapshot plus WAL-tail replay,
        bit-identical answers — on its next ingest or query.
        """
        self._ensure_open()
        if not self.durable:
            raise RuntimeError("spill requires a durable service (directory=)")
        record = self._resolve(tenant_id, create=False)
        with record.lock:
            return self._spill_locked(record)

    def _enforce_ceilings(self) -> None:
        if not self.durable:
            return
        while True:
            with self._lock:
                resident = list(self._resident.values())
            total = sum(r.measured_bytes for r in resident)
            if _TEL.enabled:
                _RESIDENT_BYTES_GAUGE.set(total)
            over_count = (
                self.max_resident_tenants is not None
                and len(resident) > self.max_resident_tenants
            )
            over_bytes = (
                self.max_resident_bytes is not None
                and total > self.max_resident_bytes
            )
            if not (over_count or over_bytes):
                return
            spilled = False
            for record in resident:  # LRU order: coldest first
                # non-blocking: a tenant busy ingesting is by definition
                # not cold; skip it rather than deadlock on its lock
                if not record.lock.acquire(blocking=False):
                    continue
                try:
                    spilled = self._spill_locked(record)
                finally:
                    record.lock.release()
                if spilled:
                    break
            if not spilled:
                return  # every resident tenant is mid-operation; retry later

    # -- ingest ------------------------------------------------------------

    def _reject(
        self,
        record: TenantRecord,
        reason: str,
        n: int,
        retry_after: Optional[float],
        raise_: bool,
    ) -> TenantReceipt:
        record.rejects[reason] += 1
        if _TEL.enabled:
            _REJECTS.labels(
                tenant=self._guard.label(record.tenant_id), reason=reason
            ).inc()
        if raise_:
            detail = (
                f"rate quota exhausted (retry in {retry_after:.3f}s)"
                if reason == "rate"
                else (
                    f"resident bytes {record.measured_bytes} over quota "
                    f"{record.quota.max_resident_bytes}"
                )
            )
            raise TenantQuotaError(
                record.tenant_id,
                reason,
                f"tenant {record.tenant_id!r}: {detail}",
                retry_after,
            )
        return TenantReceipt(record.tenant_id, record.epoch, -1, 0, n)

    def ingest(
        self, tenant_id: str, value, timestamp, weight: float = 1.0
    ) -> TenantReceipt:
        """Ingest one item for one tenant (see :meth:`ingest_batch`)."""
        weights = None if weight == 1.0 else [weight]
        return self.ingest_batch(tenant_id, [value], [timestamp], weights)

    def ingest_batch(
        self, tenant_id: str, values, timestamps=None, weights=None
    ) -> TenantReceipt:
        """Quota-check and route one batch into a tenant's sketch family.

        ``values`` may be a ready :class:`~repro.core.StreamBatch`
        (``timestamps``/``weights`` then ignored) or arrays as for
        :meth:`ShardedSketchService.ingest_batch`.  Unknown tenants are
        auto-registered under the default factory when ``auto_register``
        is on.  Admission order: token-bucket rate first (a rate-limited
        tenant is shed *without* reloading it), then residency
        (reload/instantiate), then the resident-bytes quota.  Returns a
        :class:`TenantReceipt` — ``seqno`` is ``-1`` and ``dropped`` is
        the batch size when the quota dropped the batch.  Raises
        :class:`~repro.service.TenantQuotaError` under the ``error``
        policy (and for byte-quota violations under ``block``: blocking
        cannot shrink a sketch).
        """
        self._ensure_open()
        if isinstance(values, StreamBatch):
            batch = values
        else:
            batch = StreamBatch.from_arrays(values, timestamps, weights)
        n = len(batch)
        record = self._resolve(tenant_id, create=self.auto_register)
        with record.lock:
            quota = record.quota
            bucket = record.bucket
            if bucket is not None and n:
                wait = bucket.try_take(n)
                if wait > 0.0:
                    if quota.policy == "block":
                        if not bucket.take(n, timeout=quota.block_timeout):
                            return self._reject(
                                record, "rate", n, wait, raise_=True
                            )
                    elif quota.policy == "drop":
                        return self._reject(record, "rate", n, wait, raise_=False)
                    else:
                        return self._reject(record, "rate", n, wait, raise_=True)
            service = self._ensure_resident(record)
            if (
                quota.max_resident_bytes is not None
                and record.measured_bytes > quota.max_resident_bytes
            ):
                drop = quota.policy == "drop"
                return self._reject(record, "bytes", n, None, raise_=not drop)
            if self._auditor is not None:
                # parent-side, pre-routing, keyed by tenant: spills and
                # shard rebuilds never touch the audit ground truth
                self._auditor.observe_batch(
                    batch.values,
                    batch.timestamps,
                    batch.weights,
                    tenant=record.tenant_id,
                )
            receipt = service.ingest_batch(
                batch.values, batch.timestamps, batch.weights
            )
            record.items_ingested += receipt.accepted
            record.items_since_measure += receipt.accepted
            if _TEL.enabled and receipt.accepted:
                _INGEST_ITEMS.labels(
                    tenant=self._guard.label(record.tenant_id)
                ).inc(receipt.accepted)
            if record.items_since_measure >= self.accounting_interval:
                self._measure_locked(record)
            result = TenantReceipt(
                record.tenant_id,
                record.epoch,
                receipt.seqno,
                receipt.accepted,
                receipt.dropped,
            )
        self._enforce_ceilings()
        return result

    # -- queries -----------------------------------------------------------

    def _delegate(self, tenant_id: str, name: str, args, kwargs):
        self._ensure_open()
        record = self._resolve(tenant_id, create=False)
        with record.lock:
            service = self._ensure_resident(record)
            result = getattr(service, name)(*args, **kwargs)
            if _TEL.enabled:
                _QUERIES.labels(
                    tenant=self._guard.label(record.tenant_id)
                ).inc()
        self._enforce_ceilings()
        return result

    def query(self, tenant_id: str, method: str, *args, **kwargs):
        """Generic fan-out query against one tenant's sketch family.

        Same contract as :meth:`ShardedSketchService.query` (``combine``,
        ``shard``, ``explain``, ``partial``).  Queries never auto-register:
        an unknown tenant raises :class:`UnknownTenantError`.  Touching a
        cold tenant reloads it transparently.
        """
        return self._delegate(tenant_id, "query", (method,) + args, kwargs)

    def estimate_at(self, tenant_id: str, key, timestamp, explain=False):
        """ATTP point estimate for one tenant (see the sharded service)."""
        return self._delegate(
            tenant_id, "estimate_at", (key, timestamp), {"explain": explain}
        )

    def estimate_since(self, tenant_id: str, key, timestamp, explain=False):
        """BITP suffix estimate for one tenant."""
        return self._delegate(
            tenant_id, "estimate_since", (key, timestamp), {"explain": explain}
        )

    def estimate_between(self, tenant_id: str, key, start, end, explain=False):
        """Back-in-time window estimate for one tenant."""
        return self._delegate(
            tenant_id,
            "estimate_between",
            (key, start, end),
            {"explain": explain},
        )

    def heavy_hitters_at(self, tenant_id: str, timestamp, threshold) -> list:
        """ATTP heavy hitters for one tenant."""
        return self._delegate(
            tenant_id, "heavy_hitters_at", (timestamp, threshold), {}
        )

    def heavy_hitters_since(self, tenant_id: str, timestamp, threshold) -> list:
        """BITP suffix heavy hitters for one tenant."""
        return self._delegate(
            tenant_id, "heavy_hitters_since", (timestamp, threshold), {}
        )

    def contains_at(self, tenant_id: str, key, timestamp, explain=False):
        """ATTP membership for one tenant."""
        return self._delegate(
            tenant_id, "contains_at", (key, timestamp), {"explain": explain}
        )

    def total_weight_at(self, tenant_id: str, timestamp, explain=False):
        """Stream weight at ``timestamp`` for one tenant."""
        return self._delegate(
            tenant_id, "total_weight_at", (timestamp,), {"explain": explain}
        )

    # -- consistency -------------------------------------------------------

    def wait_for(
        self, receipt: TenantReceipt, timeout: Optional[float] = None
    ) -> bool:
        """Read-your-writes: block until a receipt's items are applied.

        A receipt from an earlier residency epoch — or from a tenant that
        has since spilled — returns True immediately: spilling drains and
        snapshots everything before releasing the tenant, so those items
        are already applied (and durable).
        """
        record = self._resolve(receipt.tenant, create=False)
        with record.lock:
            if record.service is None or record.epoch > receipt.epoch:
                return True
            return record.service.wait_for(receipt.seqno, timeout)

    def drain(
        self, tenant_id: Optional[str] = None, timeout: Optional[float] = None
    ) -> bool:
        """Drain one tenant (or every resident tenant) to its watermark."""
        return self._sweep("drain", tenant_id, timeout)

    def flush(
        self, tenant_id: Optional[str] = None, timeout: Optional[float] = None
    ) -> bool:
        """Drain, then force durable WALs to stable storage."""
        return self._sweep("flush", tenant_id, timeout)

    def _sweep(
        self, op: str, tenant_id: Optional[str], timeout: Optional[float]
    ) -> bool:
        self._ensure_open()
        if tenant_id is not None:
            records = [self._resolve(tenant_id, create=False)]
        else:
            with self._lock:
                records = list(self._resident.values())
        ok = True
        for record in records:
            with record.lock:
                if record.service is None:
                    continue  # cold tenants are drained by definition
                ok = getattr(record.service, op)(timeout) and ok
        return ok

    # -- accounting & observability ----------------------------------------

    def resident_bytes(
        self, tenant_id: Optional[str] = None, refresh: bool = False
    ):
        """Modelled resident bytes: one tenant's, or the resident total.

        Uses the cached per-tenant measurements (refreshed every
        ``accounting_interval`` accepted items); ``refresh=True`` forces a
        fresh fan-out measure first (and, for the fleet total, re-applies
        the resident ceilings against the fresh numbers).  A cold tenant
        reports its last measured size (named tenant) or contributes
        nothing (total).
        """
        if tenant_id is None:
            with self._lock:
                records = list(self._resident.values())
            if refresh:
                for record in records:
                    with record.lock:
                        if record.service is not None:
                            self._measure_locked(record)
                self._enforce_ceilings()
                with self._lock:
                    records = list(self._resident.values())
            return sum(record.measured_bytes for record in records)
        record = self._resolve(tenant_id, create=False)
        with record.lock:
            if refresh and record.service is not None:
                self._measure_locked(record)
            return record.measured_bytes

    def publish_memory(self) -> dict:
        """Publish per-tenant residency to the memory accountant.

        Own-label tenants (the guard's top-K) publish as
        ``tenant/<tenant_id>`` with per-shard components; everyone else
        aggregates into ``tenant/__other__`` — the accountant's gauge
        cardinality is bounded by the guard plus the resident cap.  Use
        :func:`repro.telemetry.breakdown` with
        ``prefix=`` :data:`TENANT_MEMORY_PREFIX` for the grouped view.
        Returns ``{report_name: resident_bytes}`` as published.
        """
        with self._lock:
            records = list(self._resident.values())
        published: Dict[str, int] = {}
        other = 0
        for record in records:
            if record.lock.acquire(blocking=False):
                try:
                    if record.service is None:
                        continue
                    self._measure_locked(record)
                    sizes = record.measured_shards
                finally:
                    record.lock.release()
            else:
                sizes = record.measured_shards  # busy: last measure stands
            if self._guard.label(record.tenant_id) != OTHER_LABEL:
                name = TENANT_MEMORY_PREFIX + record.tenant_id
                report = MemoryReport(
                    name=name,
                    components=[
                        ComponentMemory(f"shard-{index}", size)
                        for index, size in enumerate(sizes)
                    ],
                )
                publish(report)
                published[name] = report.resident_bytes
            else:
                other += sum(sizes)
        rollup = TENANT_MEMORY_PREFIX + OTHER_LABEL
        publish(
            MemoryReport(
                name=rollup, components=[ComponentMemory("all", other)]
            )
        )
        published[rollup] = other
        if _TEL.enabled:
            _RESIDENT_BYTES_GAUGE.set(sum(published.values()))
        return published

    def tenants(self) -> dict:
        """The ``/tenants`` payload: fleet summary plus resident detail.

        Per-tenant detail covers only *resident* tenants (a 100k-tenant
        registry must not produce a 100k-entry payload); the cold fleet
        is summarised by ``known``.
        """
        with self._lock:
            resident = list(self._resident.items())
        return {
            "known": len(self._registry),
            "resident": len(resident),
            "resident_order": [tenant_id for tenant_id, _ in resident],
            "resident_bytes": sum(
                record.measured_bytes for _, record in resident
            ),
            "max_resident_tenants": self.max_resident_tenants,
            "max_resident_bytes": self.max_resident_bytes,
            "durable": self.durable,
            "factories": self._registry.factory_names(),
            "label_guard": {
                "top_k": self._guard.top_k,
                "cardinality": self._guard.cardinality,
            },
            "tenants": {
                tenant_id: record.describe() for tenant_id, record in resident
            },
        }

    def stats(self) -> dict:
        """:meth:`tenants` plus shared answer-cache statistics."""
        payload = self.tenants()
        payload["cache"] = self._cache.info()
        return payload

    def health(self) -> dict:
        """Aggregate liveness: unhealthy when any resident tenant is.

        Busy tenants (mid-ingest) are skipped rather than blocked on —
        health is a liveness probe, not a barrier.
        """
        with self._lock:
            records = list(self._resident.values())
        unhealthy: Dict[str, dict] = {}
        for record in records:
            if not record.lock.acquire(blocking=False):
                continue
            try:
                if record.service is None:
                    continue
                report = record.service.health()
                if not report.get("healthy", False):
                    unhealthy[record.tenant_id] = report
            finally:
                record.lock.release()
        return {
            "healthy": not self._closed and not unhealthy,
            "closed": self._closed,
            "known": len(self._registry),
            "resident": len(records),
            "unhealthy_tenants": unhealthy,
        }

    def attach_auditor(self, auditor) -> None:
        """Shadow-record every tenant's accepted batches into ``auditor``.

        Ground truth is keyed by tenant id parent-side (see
        :meth:`~repro.service.ShardedSketchService.attach_auditor`);
        the auditor replays through this service's tenant-scoped query
        API.  Pass ``None`` to detach.
        """
        self._auditor = auditor
        if auditor is not None:
            auditor.bind_tenancy(self)

    def serve_introspection(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        poller=None,
        alerts=None,
    ) -> IntrospectionServer:
        """Introspection HTTP server with the tenancy ``/tenants`` route.

        Serves ``/metrics``, ``/report``, ``/spans``, ``/traces/<id>``
        from process-global telemetry, ``/healthz`` from :meth:`health`,
        and ``/tenants`` from :meth:`tenants`.  Each scrape refreshes the
        per-tenant memory-accountant gauges (and pulls process-backend
        worker telemetry) first.  The caller owns the returned server.

        ``poller`` / ``alerts`` add ``/timeseries``, ``/dashboard`` and
        ``/alerts`` exactly as on
        :meth:`~repro.service.ShardedSketchService.serve_introspection`,
        including the ``/healthz`` fold (503 while a critical rule
        fires).
        """

        def on_scrape() -> None:
            with self._lock:
                records = list(self._resident.values())
            for record in records:
                service = record.service
                if service is None:
                    continue
                for worker in service._workers:
                    worker.pull_telemetry()
            self.publish_memory()

        health = self.health
        if alerts is not None:
            def health_with_alerts() -> dict:
                payload = self.health()
                summary = alerts.summary()
                payload["alerts"] = summary
                if summary["critical_firing"]:
                    payload["healthy"] = False
                return payload
            health = health_with_alerts

        return IntrospectionServer(
            host=host,
            port=port,
            health=health,
            tenants=self.tenants,
            on_scrape=on_scrape,
            timeseries=poller.series if poller is not None else None,
            alerts=alerts.status if alerts is not None else None,
            dashboard=poller.dashboard_html if poller is not None else None,
        ).start()
