"""Durable sketch storage: versioned save/load with integrity checks.

A persistent sketch is meant to outlive the process that built it — the
paper's audit scenario queries a summary "months later".  Raw ``pickle``
works but fails ungracefully (wrong file, truncation, version skew all
surface as cryptic unpickling errors deep in a stack).  This module wraps
pickle in a small framed format:

* an 8-byte magic, a format version, the sketch's class path;
* the pickled payload length and a SHA-256 digest of the payload.

``load`` verifies all of it before unpickling and raises
:class:`SketchFileError` with a precise message otherwise.

SECURITY: the payload is still a pickle — load sketch files only from
sources you trust, exactly as you would a pickle.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import struct
from pathlib import Path
from typing import Any

MAGIC = b"REPROSK1"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">8sHI")  # magic, format version, class-path length
_PAYLOAD = struct.Struct(">Q32s")  # payload length, sha256 digest


class SketchFileError(RuntimeError):
    """The file is not a valid sketch file (or is corrupt / mismatched)."""


def class_path(obj: Any) -> str:
    """Importable dotted path of an object's class."""
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def save_sketch(sketch: Any, path) -> int:
    """Serialise ``sketch`` to ``path``; returns the bytes written.

    The write goes through a temporary sibling file and an atomic rename, so
    a crash mid-save never leaves a half-written sketch file behind.
    """
    path = Path(path)
    payload = pickle.dumps(sketch, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    encoded_class = class_path(sketch).encode("utf-8")
    buffer = io.BytesIO()
    buffer.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(encoded_class)))
    buffer.write(encoded_class)
    buffer.write(_PAYLOAD.pack(len(payload), digest))
    buffer.write(payload)
    data = buffer.getvalue()
    temporary = path.with_suffix(path.suffix + ".tmp")
    temporary.write_bytes(data)
    temporary.replace(path)
    return len(data)


def inspect_sketch_file(path) -> dict:
    """Read a sketch file's metadata without unpickling the payload."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise SketchFileError(f"{path}: too short to be a sketch file")
    magic, version, class_length = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise SketchFileError(f"{path}: not a sketch file (bad magic)")
    if version != FORMAT_VERSION:
        raise SketchFileError(
            f"{path}: format version {version} unsupported (expected {FORMAT_VERSION})"
        )
    offset = _HEADER.size
    if len(data) < offset + class_length + _PAYLOAD.size:
        raise SketchFileError(f"{path}: truncated header")
    stored_class = data[offset : offset + class_length].decode("utf-8")
    offset += class_length
    payload_length, digest = _PAYLOAD.unpack_from(data, offset)
    offset += _PAYLOAD.size
    if len(data) != offset + payload_length:
        raise SketchFileError(
            f"{path}: payload length mismatch "
            f"(header says {payload_length}, file has {len(data) - offset})"
        )
    return {
        "class": stored_class,
        "payload_bytes": payload_length,
        "digest": digest,
        "payload_offset": offset,
    }


def load_sketch(path, expected_class: Any = None) -> Any:
    """Load a sketch saved by :func:`save_sketch`, verifying integrity.

    ``expected_class`` (a class or dotted path string) additionally pins the
    stored type — pass it whenever the caller knows what it expects, so a
    mixed-up file fails before any state is used.
    """
    path = Path(path)
    meta = inspect_sketch_file(path)
    if expected_class is not None:
        if isinstance(expected_class, str):
            expected_path = expected_class
        else:
            expected_path = (
                f"{expected_class.__module__}.{expected_class.__qualname__}"
            )
        if meta["class"] != expected_path:
            raise SketchFileError(
                f"{path}: holds a {meta['class']}, expected {expected_path}"
            )
    data = path.read_bytes()
    payload = data[meta["payload_offset"] :]
    if hashlib.sha256(payload).digest() != meta["digest"]:
        raise SketchFileError(f"{path}: payload digest mismatch (corrupt file)")
    return pickle.loads(payload)
