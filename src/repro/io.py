"""Durable sketch storage: versioned save/load with integrity checks.

A persistent sketch is meant to outlive the process that built it — the
paper's audit scenario queries a summary "months later".  Raw ``pickle``
works but fails ungracefully (wrong file, truncation, version skew all
surface as cryptic unpickling errors deep in a stack).  This module wraps
pickle in a small framed format:

* an 8-byte magic, a format version, the sketch's class path;
* the pickled payload length and a SHA-256 digest of the payload.

``load`` verifies all of it before unpickling and raises
:class:`SketchFileError` with a precise message otherwise.

:func:`save_sketch` is crash-safe in the strong sense: the bytes go to a
temporary sibling file which is fsynced, atomically renamed over the target,
and the parent directory is fsynced — so after ``save_sketch`` returns, the
file survives power loss, and a crash mid-save leaves the old file intact.
The :mod:`repro.durability` subsystem builds its snapshots on the same
format via :func:`encode_sketch` / :func:`decode_sketch`.

SECURITY: the payload is still a pickle — load sketch files only from
sources you trust, exactly as you would a pickle.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
from pathlib import Path
from typing import Any

MAGIC = b"REPROSK1"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">8sHI")  # magic, format version, class-path length
_PAYLOAD = struct.Struct(">Q32s")  # payload length, sha256 digest


class SketchFileError(RuntimeError):
    """The file is not a valid sketch file (or is corrupt / mismatched)."""


def class_path(obj: Any) -> str:
    """Importable dotted path of a class, or of an object's class."""
    cls = obj if isinstance(obj, type) else type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def fsync_directory(directory) -> None:
    """fsync a directory so renames/creates/removals inside it are durable.

    Best-effort on platforms whose filesystems reject directory fsync
    (some network mounts, Windows): those errors are swallowed — there is
    nothing more a user-space program can do there.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def encode_sketch(sketch: Any) -> bytes:
    """Serialise ``sketch`` to the framed byte format (no I/O)."""
    payload = pickle.dumps(sketch, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    encoded_class = class_path(sketch).encode("utf-8")
    buffer = io.BytesIO()
    buffer.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(encoded_class)))
    buffer.write(encoded_class)
    buffer.write(_PAYLOAD.pack(len(payload), digest))
    buffer.write(payload)
    return buffer.getvalue()


def _parse_frame(data: bytes, origin: str) -> dict:
    """Validate the frame around ``data`` and return its metadata.

    ``origin`` names the source (a path, "<memory>") for error messages.
    Does not verify the payload digest — callers that intend to unpickle
    must check it against ``data[meta['payload_offset']:]`` first.
    """
    if len(data) < _HEADER.size:
        raise SketchFileError(f"{origin}: too short to be a sketch file")
    magic, version, class_length = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise SketchFileError(f"{origin}: not a sketch file (bad magic)")
    if version != FORMAT_VERSION:
        raise SketchFileError(
            f"{origin}: format version {version} unsupported (expected {FORMAT_VERSION})"
        )
    offset = _HEADER.size
    if len(data) < offset + class_length + _PAYLOAD.size:
        raise SketchFileError(f"{origin}: truncated header")
    stored_class = data[offset : offset + class_length].decode("utf-8")
    offset += class_length
    payload_length, digest = _PAYLOAD.unpack_from(data, offset)
    offset += _PAYLOAD.size
    if len(data) != offset + payload_length:
        raise SketchFileError(
            f"{origin}: payload length mismatch "
            f"(header says {payload_length}, file has {len(data) - offset})"
        )
    return {
        "class": stored_class,
        "payload_bytes": payload_length,
        "digest": digest,
        "payload_offset": offset,
    }


def decode_sketch(data: bytes, origin: str = "<memory>", expected_class: Any = None) -> Any:
    """Decode framed bytes produced by :func:`encode_sketch`, verifying them.

    ``expected_class`` (a class or dotted path string) additionally pins the
    stored type — pass it whenever the caller knows what it expects, so a
    mixed-up file fails before any state is used.
    """
    meta = _parse_frame(data, origin)
    if expected_class is not None:
        expected_path = (
            expected_class
            if isinstance(expected_class, str)
            else class_path(expected_class)
        )
        if meta["class"] != expected_path:
            raise SketchFileError(
                f"{origin}: holds a {meta['class']}, expected {expected_path}"
            )
    payload = data[meta["payload_offset"] :]
    if hashlib.sha256(payload).digest() != meta["digest"]:
        raise SketchFileError(f"{origin}: payload digest mismatch (corrupt file)")
    return pickle.loads(payload)


def save_sketch(sketch: Any, path) -> int:
    """Serialise ``sketch`` to ``path``; returns the bytes written.

    The write goes through a temporary sibling file (fsynced), an atomic
    rename, and a parent-directory fsync — a crash at any point leaves either
    the previous file or the complete new one, and a completed save survives
    power loss.
    """
    path = Path(path)
    data = encode_sketch(sketch)
    temporary = path.with_suffix(path.suffix + ".tmp")
    with open(temporary, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    temporary.replace(path)
    fsync_directory(path.parent)
    return len(data)


def inspect_sketch_file(path) -> dict:
    """Read a sketch file's metadata without unpickling the payload."""
    path = Path(path)
    return _parse_frame(path.read_bytes(), str(path))


def load_sketch(path, expected_class: Any = None) -> Any:
    """Load a sketch saved by :func:`save_sketch`, verifying integrity.

    The file is read exactly once; header, class pin, and payload digest are
    all verified against that same buffer (no re-read window).
    """
    path = Path(path)
    return decode_sketch(path.read_bytes(), str(path), expected_class)
