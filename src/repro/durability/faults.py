"""Injectable filesystem shim and fault-injection harness.

The durability layer (:mod:`repro.durability.wal` / ``store``) performs all
of its writes through a :class:`Filesystem` object instead of calling ``os``
directly.  In production that object is :class:`OsFilesystem`; in tests it is
:class:`FaultyFilesystem`, which wraps the real one, labels and counts every
operation, and can

* **crash** (raise :class:`SimulatedCrash`) before or after the Nth
  operation, or mid-write leaving a *torn* record on disk;
* **fail** the Nth operation once with an injected ``OSError`` (disk full,
  fsync failure) without crashing the process;
* **short-write** the Nth write — silently persist only a prefix, the way a
  real kernel may on ENOSPC — to exercise CRC detection at recovery.

A *kill-point sweep* runs ingestion once in trace mode to enumerate every
labelled operation, then re-runs it crashing at each chosen point and
asserts recovery reproduces the pre-crash answers
(``tests/durability/test_crash_sweep.py``).

:class:`SimulatedCrash` inherits from ``BaseException`` on purpose: durable
code under test must not be able to swallow it with ``except Exception``,
exactly as it cannot swallow a real power failure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional


class SimulatedCrash(BaseException):
    """The process 'died' here — everything after this point never ran."""


class InjectedIOError(OSError):
    """An injected I/O failure (disk full, fsync error, ...)."""


class AppendHandle:
    """An open append-only file: sequential writes, explicit fsync."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._file = open(self.path, "ab")

    @property
    def size(self) -> int:
        return self._file.tell()

    def write(self, data: bytes) -> int:
        written = self._file.write(data)
        self._file.flush()
        return written

    def fsync(self) -> None:
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()


class OsFilesystem:
    """The real filesystem, factored into the primitives the WAL needs.

    ``write_atomic`` composes the primitives (rather than calling ``os``
    directly) so a fault injector wrapping this class sees — and can crash
    between — each step of the temp-write / fsync / rename / dirsync dance.
    """

    def open_append(self, path) -> AppendHandle:
        """Open ``path`` for appending; returns an :class:`AppendHandle`."""
        return AppendHandle(Path(path))

    def append(self, handle: AppendHandle, data: bytes) -> int:
        """Append ``data`` through ``handle``; returns bytes written."""
        return handle.write(data)

    def fsync(self, handle: AppendHandle) -> None:
        """fsync the bytes appended through ``handle`` to stable storage."""
        handle.fsync()

    def write_bytes(self, path, data: bytes) -> int:
        """Create/overwrite ``path`` with ``data`` (not atomic, not synced)."""
        with open(path, "wb") as file:
            written = file.write(data)
        return written

    def fsync_file(self, path) -> None:
        """fsync an existing file by path."""
        fd = os.open(str(path), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, directory) -> None:
        """fsync a directory entry (best-effort; see :func:`repro.io.fsync_directory`)."""
        try:
            fd = os.open(str(directory), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def replace(self, source, destination) -> None:
        """Atomically rename ``source`` over ``destination``."""
        os.replace(str(source), str(destination))

    def remove(self, path) -> None:
        """Delete a file."""
        os.remove(str(path))

    def truncate(self, path, size: int) -> None:
        """Cut ``path`` down to ``size`` bytes."""
        os.truncate(str(path), size)

    def write_atomic(self, path, data: bytes, durable: bool = True) -> int:
        """Temp-file + fsync + atomic rename + directory fsync."""
        path = Path(path)
        temporary = path.with_suffix(path.suffix + ".tmp")
        self.write_bytes(temporary, data)
        if durable:
            self.fsync_file(temporary)
        self.replace(temporary, path)
        if durable:
            self.fsync_dir(path.parent)
        return len(data)


@dataclass
class FaultPlan:
    """Where and how a :class:`FaultyFilesystem` misbehaves.

    Operation indices are 1-based positions in the global operation sequence
    (the order :class:`FaultyFilesystem` records in ``ops``).  ``crash_mode``:

    * ``'before'`` — crash instead of performing the operation;
    * ``'after'``  — perform it fully, then crash;
    * ``'torn'``   — for data-writing ops, persist only a strict prefix of
      the bytes, then crash (non-writes behave as ``'after'``).
    """

    crash_at: Optional[int] = None
    crash_mode: str = "before"
    error_at: Optional[int] = None
    short_write_at: Optional[int] = None

    def __post_init__(self):
        if self.crash_mode not in ("before", "after", "torn"):
            raise ValueError(f"unknown crash_mode {self.crash_mode!r}")


@dataclass
class OpRecord:
    """One recorded filesystem operation."""

    index: int
    label: str

    def __iter__(self):
        return iter((self.index, self.label))


class FaultyFilesystem(OsFilesystem):
    """A filesystem that counts, traces, and injects faults into every op.

    With a default :class:`FaultPlan` it is a pure tracer: run the workload
    once, read ``ops`` to learn every kill point, then re-run with
    ``crash_at`` set to each point of interest.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        self.ops: List[OpRecord] = []
        self.crashed = False

    # -- injection core ----------------------------------------------------

    def _arm(self, label: str) -> int:
        """Record one op; handle 'before' crash and injected errors."""
        index = len(self.ops) + 1
        self.ops.append(OpRecord(index, label))
        if index == self.plan.error_at:
            raise InjectedIOError(f"injected I/O error at op {index} ({label})")
        if index == self.plan.crash_at and self.plan.crash_mode == "before":
            self._crash(index, label)
        return index

    def _crash(self, index: int, label: str) -> None:
        self.crashed = True
        raise SimulatedCrash(f"simulated crash at op {index} ({label})")

    def _finish(self, index: int, label: str) -> None:
        if index == self.plan.crash_at and self.plan.crash_mode != "before":
            self._crash(index, label)

    def _torn_here(self, index: int) -> bool:
        return index == self.plan.crash_at and self.plan.crash_mode == "torn"

    def _short_here(self, index: int) -> bool:
        return index == self.plan.short_write_at

    @staticmethod
    def _prefix(data: bytes) -> bytes:
        """A strict prefix: at least one byte lost, at most all of them."""
        return data[: max(0, len(data) - 1 - len(data) // 3)]

    # -- instrumented primitives -------------------------------------------

    def append(self, handle: AppendHandle, data: bytes) -> int:
        """Instrumented :meth:`OsFilesystem.append` (traced, fault-injectable)."""
        index = self._arm(f"append:{handle.path.name}")
        if self._torn_here(index):
            super().append(handle, self._prefix(data))
            self._crash(index, f"append:{handle.path.name}")
        if self._short_here(index):
            return super().append(handle, self._prefix(data))
        written = super().append(handle, data)
        self._finish(index, f"append:{handle.path.name}")
        return written

    def fsync(self, handle: AppendHandle) -> None:
        """Instrumented :meth:`OsFilesystem.fsync` (traced, fault-injectable)."""
        label = f"fsync:{handle.path.name}"
        index = self._arm(label)
        super().fsync(handle)
        self._finish(index, label)

    def write_bytes(self, path, data: bytes) -> int:
        """Instrumented :meth:`OsFilesystem.write_bytes` (traced, fault-injectable)."""
        label = f"write:{Path(path).name}"
        index = self._arm(label)
        if self._torn_here(index):
            super().write_bytes(path, self._prefix(data))
            self._crash(index, label)
        if self._short_here(index):
            return super().write_bytes(path, self._prefix(data))
        written = super().write_bytes(path, data)
        self._finish(index, label)
        return written

    def fsync_file(self, path) -> None:
        """Instrumented :meth:`OsFilesystem.fsync_file` (traced, fault-injectable)."""
        label = f"fsync_file:{Path(path).name}"
        index = self._arm(label)
        super().fsync_file(path)
        self._finish(index, label)

    def fsync_dir(self, directory) -> None:
        """Instrumented :meth:`OsFilesystem.fsync_dir` (traced, fault-injectable)."""
        label = "fsync_dir"
        index = self._arm(label)
        super().fsync_dir(directory)
        self._finish(index, label)

    def replace(self, source, destination) -> None:
        """Instrumented :meth:`OsFilesystem.replace` (traced, fault-injectable)."""
        label = f"replace:{Path(destination).name}"
        index = self._arm(label)
        super().replace(source, destination)
        self._finish(index, label)

    def remove(self, path) -> None:
        """Instrumented :meth:`OsFilesystem.remove` (traced, fault-injectable)."""
        label = f"remove:{Path(path).name}"
        index = self._arm(label)
        super().remove(path)
        self._finish(index, label)

    def truncate(self, path, size: int) -> None:
        """Instrumented :meth:`OsFilesystem.truncate` (traced, fault-injectable)."""
        label = f"truncate:{Path(path).name}"
        index = self._arm(label)
        super().truncate(path, size)
        self._finish(index, label)
