"""DurableSketch: crash-safe ingestion around any ATTP/BITP sketch.

The write path is the classic WAL protocol:

1. ``update(value, timestamp, weight)`` frames the record and appends it to
   the :class:`~repro.durability.wal.WriteAheadLog` **first**;
2. only then is the update applied to the in-memory sketch (through
   :func:`repro.core.apply_stream_update`, the same dispatch replay uses);
3. every ``snapshot_every`` accepted updates, the whole sketch is written
   as a framed snapshot (``repro.io`` format) via an atomic, fsynced
   temp-file rename, and *only after* the snapshot is durable are the WAL
   segments it covers deleted.

Consequences:

* a crash at any instant loses at most the in-flight update (plus, under
  ``fsync_policy='batch'``/``'off'``, unsynced appends the OS had not yet
  written back — bounded by ``batch_every``);
* :func:`repro.durability.recovery.recover` always finds either the old
  snapshot + full WAL, or the new snapshot + WAL tail — never a state with
  holes;
* an update the sketch itself rejects (``MonotoneViolation``, bad weight)
  re-raises to the caller *after* being logged; replay re-rejects it
  deterministically, so the WAL never needs compensation records.

Queries go straight to the wrapped sketch (attribute access is forwarded),
so a ``DurableSketch`` answers ``heavy_hitters_at`` / ``quantile_at`` /
``estimate_since`` exactly like the sketch it protects.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Optional

import numpy as np

from repro.core.base import apply_stream_batch, apply_stream_update, check_batch_lengths
from repro.core.batch import StreamBatch
from repro.durability.faults import OsFilesystem
from repro.durability.recovery import Snapshot, list_snapshots, recover, snapshot_name
from repro.durability.wal import WriteAheadLog, list_segments
from repro.io import encode_sketch
from repro.telemetry.registry import TELEMETRY as _TEL, timed
from repro.telemetry.spans import span

_SNAPSHOTS = _TEL.counter(
    "store_snapshots_total",
    "Durable snapshots written by DurableSketch stores.",
)
_REJECTED = _TEL.counter(
    "store_updates_rejected_total",
    "Logged updates the wrapped sketch rejected (replayed identically).",
)
_SNAPSHOT_SECONDS = _TEL.histogram(
    "store_snapshot_seconds",
    "Wall time of one snapshot (WAL flush + encode + atomic write + truncate).",
)


class DurableSketch:
    """A sketch whose accepted updates survive process death.

    Build fresh or resume with :meth:`open`; ingest with :meth:`update`;
    query through any attribute of the wrapped sketch.  ``snapshot_every=0``
    disables automatic snapshots (call :meth:`snapshot` manually).
    """

    def __init__(
        self,
        sketch: Any,
        directory,
        *,
        fs: Optional[OsFilesystem] = None,
        fsync_policy: str = "batch",
        batch_every: int = 64,
        snapshot_every: int = 10_000,
        segment_bytes: int = 1 << 20,
        keep_snapshots: int = 2,
        next_seqno: int = 1,
        applied_seqno: int = 0,
        snapshot_seqno: int = 0,
    ):
        if snapshot_every < 0:
            raise ValueError(f"snapshot_every must be >= 0, got {snapshot_every}")
        if keep_snapshots < 1:
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self._sketch = sketch
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fs = fs or OsFilesystem()
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots
        self.applied_seqno = applied_seqno
        self.last_snapshot_seqno = snapshot_seqno
        # Snapshot cadence counts *updates*, not records: a BATCH record
        # advances it by its length.  Seeded from the seqno gap so resumed
        # scalar-only stores behave exactly as before.
        self._updates_since_snapshot = max(0, applied_seqno - snapshot_seqno)
        self.snapshots_taken = 0
        self.updates_rejected = 0
        self.wal = WriteAheadLog(
            self.directory,
            fs=self.fs,
            fsync_policy=fsync_policy,
            batch_every=batch_every,
            segment_bytes=segment_bytes,
            next_seqno=next_seqno,
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def open(
        cls,
        factory: Callable[[], Any],
        directory,
        *,
        strict: bool = True,
        **options,
    ) -> "DurableSketch":
        """Open ``directory``, recovering any existing state first.

        ``factory`` builds the empty sketch — with the *same* parameters and
        seed every time, since replay determinism depends on it.  On a fresh
        directory this is just ``factory()`` plus an empty WAL.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        has_state = bool(list_segments(directory)) or bool(list_snapshots(directory))
        if has_state:
            result = recover(directory, factory, strict=strict, fs=options.get("fs"))
            store = cls(
                result.sketch,
                directory,
                next_seqno=result.last_seqno + 1,
                applied_seqno=result.last_seqno,
                snapshot_seqno=result.snapshot_seqno,
                **options,
            )
            store.last_recovery = result
            return store
        store = cls(factory(), directory, **options)
        store.last_recovery = None
        return store

    # -- ingestion ----------------------------------------------------------

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> int:
        """Log, then apply, one stream update; returns its sequence number.

        When this returns, the update is in the WAL (on stable storage under
        ``fsync_policy='always'``) *and* applied to the in-memory sketch.
        If the sketch rejects the offer (``MonotoneViolation``, hostile
        weight), the exception propagates and the logged record will be
        re-rejected identically at replay — accepted state is never skewed.
        """
        seqno = self.wal.append(value, timestamp, weight)
        self._updates_since_snapshot += 1
        try:
            apply_stream_update(self._sketch, value, timestamp, weight)
        except ValueError:
            self.updates_rejected += 1
            self.applied_seqno = seqno
            if _TEL.enabled:
                _REJECTED.inc()
            raise
        self.applied_seqno = seqno
        if self.snapshot_every and self._updates_since_snapshot >= self.snapshot_every:
            self.snapshot()
        return seqno

    def update_batch(self, values, timestamps=None, weights=None) -> int:
        """Log one BATCH record, then apply the batch; returns its seqno.

        Accepts the triple form or a single
        :class:`~repro.core.StreamBatch`.  The whole batch is one WAL
        record under a single sequence number, so durability costs one
        frame (and at most one fsync) regardless of the batch size, and
        replay re-applies it through the same
        :func:`repro.core.apply_stream_batch` dispatch — vectorized when
        the sketch has ``update_batch``, a scalar loop otherwise.

        The logged payload is *columnar*: the NumPy arrays themselves are
        pickled into the ``BATCH`` record, and the very same arrays are
        then applied to the in-memory sketch — no per-item Python list
        copies on the durable hot path.  Replay decodes the arrays back
        (a NumPy pickle round-trip is exact: dtype + buffer) and applies
        them through the same dispatch, so recovered state is
        bit-identical, RNG position included.

        Mirrors :meth:`update` on rejection: a batch whose item ``i`` is
        rejected mid-way has items ``[0, i)`` applied (prefix-apply), the
        exception propagates, and replay re-rejects it at the same item.
        """
        if timestamps is None and weights is None and isinstance(values, StreamBatch):
            values, timestamps, weights = values.astuple()
        n = check_batch_lengths(values, timestamps, weights)
        if n == 0:
            return self.applied_seqno
        # Coerce once at the boundary: the applied batch and the logged
        # payload are then the *same* arrays — replay is bit-identical.
        values = np.asarray(values)
        timestamps = np.asarray(timestamps)
        weights = None if weights is None else np.asarray(weights)
        seqno = self.wal.append_batch(values, timestamps, weights)
        self._updates_since_snapshot += n
        try:
            apply_stream_batch(self._sketch, values, timestamps, weights)
        except ValueError:
            self.updates_rejected += 1
            self.applied_seqno = seqno
            if _TEL.enabled:
                _REJECTED.inc()
            raise
        self.applied_seqno = seqno
        if self.snapshot_every and self._updates_since_snapshot >= self.snapshot_every:
            self.snapshot()
        return seqno

    def update_many(self, values, timestamps, weights=None) -> int:
        """Bulk :meth:`update`: one WAL record *per item* (see
        :meth:`update_batch` for the single-record batched form).  Returns
        the last sequence number assigned."""
        seqno = self.applied_seqno
        if weights is None:
            for value, timestamp in zip(values, timestamps):
                seqno = self.update(value, timestamp)
        else:
            for value, timestamp, weight in zip(values, timestamps, weights):
                seqno = self.update(value, timestamp, weight)
        return seqno

    # -- snapshots ----------------------------------------------------------

    @timed(_SNAPSHOT_SECONDS)
    def snapshot(self) -> Path:
        """Write a durable snapshot, then truncate the WAL it covers.

        The ordering is the whole point: WAL flush → snapshot bytes fsynced
        → atomic rename → directory fsync → *only then* segment deletion.
        A crash anywhere in between leaves a recoverable directory.
        """
        with span("store.snapshot"):
            self.wal.flush()
            seqno = self.applied_seqno
            payload = Snapshot(self._sketch, seqno, wall_time=time.time())
            path = self.directory / snapshot_name(seqno)
            self.fs.write_atomic(path, encode_sketch(payload), durable=True)
            self.last_snapshot_seqno = seqno
            self._updates_since_snapshot = 0
            self.snapshots_taken += 1
            if _TEL.enabled:
                _SNAPSHOTS.inc()
            self.wal.truncate_through(seqno)
            self._prune_snapshots()
        return path

    def _prune_snapshots(self) -> None:
        """Keep the newest ``keep_snapshots`` snapshots as fallbacks."""
        for path in list_snapshots(self.directory)[self.keep_snapshots :]:
            self.fs.remove(path)
        self.fs.fsync_dir(self.directory)

    # -- lifecycle / introspection ------------------------------------------

    @property
    def sketch(self) -> Any:
        """The wrapped in-memory sketch (shared, not a copy)."""
        return self._sketch

    def stats(self) -> dict:
        """Counters for monitoring: log/snapshot/rejection activity."""
        return {
            "applied_seqno": self.applied_seqno,
            "records_appended": self.wal.records_appended,
            "snapshots_taken": self.snapshots_taken,
            "last_snapshot_seqno": self.last_snapshot_seqno,
            "segments_live": len(self.wal.segments()),
            "segments_removed": self.wal.segments_removed,
            "updates_rejected": self.updates_rejected,
        }

    def flush(self) -> None:
        """Durability barrier: make every accepted update stable."""
        self.wal.flush()

    def close(self, final_snapshot: bool = True) -> None:
        """Flush (and by default snapshot) then release the WAL."""
        if final_snapshot and self.applied_seqno > self.last_snapshot_seqno:
            self.snapshot()
        else:
            self.wal.flush()
        self.wal.close()

    def __enter__(self) -> "DurableSketch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Crash-looking exits (including SimulatedCrash) skip the tidy
        # close: recovery is the code path that must handle them.
        if exc_type is None:
            self.close()

    def __getattr__(self, name: str) -> Any:
        # Forward queries (heavy_hitters_at, quantile_at, count, ...) to the
        # wrapped sketch.  Only called when normal lookup fails, so the
        # store's own attributes always win.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._sketch, name)
