"""Crash recovery: newest valid snapshot + WAL tail replay.

The invariant maintained by :class:`repro.durability.store.DurableSketch` is
that at every instant the directory contains a durable snapshot (possibly
the implicit empty one) plus WAL segments holding every accepted update
since that snapshot.  Recovery therefore:

1. loads the newest snapshot that passes the framed-format integrity checks
   (older ones are kept as fallbacks; a corrupt one is renamed to
   ``*.corrupt`` and the next-newest is tried);
2. scans WAL segments in order, replaying records with ``seqno`` beyond the
   snapshot through :func:`repro.core.apply_stream_update` — the same
   dispatch used at ingest time, so replay is bit-for-bit identical;
3. tolerates a **torn tail** (a record cut short by a crash mid-append):
   the segment is truncated at the last complete record and ingestion
   continues — by construction a torn record was never acknowledged;
4. **quarantines interior corruption** (CRC damage *not* at the physical
   tail): the segment is renamed to ``*.quarantine`` and a
   :class:`WalCorruptionError` with a precise diagnosis is raised — or, with
   ``strict=False``, replay stops at the damage and the loss is reported in
   the :class:`RecoveryResult` so a caller can choose to serve the prefix.

Updates the sketch itself rejected at ingest time (monotonicity or weight
violations) re-raise identically at replay and are skipped — the WAL logs
*offered* updates, determinism makes rejection reproducible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, List, Optional

from repro.core.base import apply_stream_batch, apply_stream_update
from repro.durability.faults import OsFilesystem
from repro.durability.wal import (
    SegmentScan,
    WalBatchRecord,
    list_segments,
    scan_segment,
)
from repro.io import SketchFileError, load_sketch
from repro.telemetry.registry import TELEMETRY as _TEL, timed
from repro.telemetry.spans import span

_RECOVERIES = _TEL.counter(
    "recovery_runs_total",
    "recover() invocations over DurableSketch directories.",
)
_REPLAYED = _TEL.counter(
    "recovery_records_replayed_total",
    "WAL records re-applied to the sketch during recovery.",
)
_QUARANTINED = _TEL.counter(
    "recovery_segments_quarantined_total",
    "Damaged WAL segments or snapshots moved aside during recovery.",
)
_RECOVERY_SECONDS = _TEL.histogram(
    "recovery_seconds",
    "Wall time of one recover() call (snapshot load + WAL replay).",
)

SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{16})\.sketch$")


def snapshot_name(seqno: int) -> str:
    return f"snapshot-{seqno:016d}.sketch"


def snapshot_seqno(path) -> Optional[int]:
    """The sequence number encoded in a snapshot filename, or None."""
    match = SNAPSHOT_PATTERN.match(Path(path).name)
    return int(match.group(1)) if match else None


def list_snapshots(directory) -> List[Path]:
    """Snapshot files under ``directory``, newest (highest seqno) first."""
    directory = Path(directory)
    found = [
        (snapshot_seqno(path), path)
        for path in directory.iterdir()
        if snapshot_seqno(path) is not None
    ]
    return [path for _, path in sorted(found, reverse=True)]


class WalCorruptionError(SketchFileError):
    """A WAL segment is damaged in its interior (not a torn crash tail)."""


@dataclass
class Snapshot:
    """What a snapshot file holds: the sketch plus its WAL position."""

    sketch: Any
    seqno: int
    wall_time: float = 0.0


@dataclass
class RecoveryResult:
    """Everything :func:`recover` learned while rebuilding the sketch."""

    sketch: Any
    last_seqno: int = 0  # highest seqno restored (snapshot or replay)
    snapshot_seqno: int = 0
    snapshot_path: Optional[Path] = None
    replayed: int = 0  # records applied from the WAL
    rejected: int = 0  # records the sketch deterministically rejected
    skipped: int = 0  # records already covered by the snapshot
    torn_bytes: int = 0  # bytes truncated off a torn final record
    truncated_segment: Optional[Path] = None
    quarantined: List[Path] = field(default_factory=list)
    corruption_detail: str = ""

    @property
    def clean(self) -> bool:
        """True when nothing was torn, quarantined, or rejected."""
        return not (self.torn_bytes or self.quarantined or self.corruption_detail)


def _quarantine(fs: OsFilesystem, path: Path, suffix: str) -> Path:
    """Move a damaged file aside (never delete evidence)."""
    target = path.with_suffix(path.suffix + suffix)
    fs.replace(path, target)
    fs.fsync_dir(path.parent)
    if _TEL.enabled:
        _QUARANTINED.inc()
    return target


def _load_newest_snapshot(
    directory: Path, fs: OsFilesystem, result_quarantined: List[Path]
) -> tuple:
    """Newest loadable snapshot as ``(snapshot, path)``; corrupt ones moved aside."""
    for path in list_snapshots(directory):
        try:
            snapshot = load_sketch(path, expected_class=Snapshot)
        except SketchFileError:
            result_quarantined.append(_quarantine(fs, path, ".corrupt"))
            continue
        if snapshot.seqno != snapshot_seqno(path):
            result_quarantined.append(_quarantine(fs, path, ".corrupt"))
            continue
        return snapshot, path
    return None, None


@timed(_RECOVERY_SECONDS)
def recover(
    directory,
    factory: Optional[Callable[[], Any]] = None,
    *,
    strict: bool = True,
    fs: Optional[OsFilesystem] = None,
) -> RecoveryResult:
    """Rebuild a sketch from a :class:`DurableSketch` directory.

    ``factory`` builds the empty sketch when no usable snapshot exists (it
    must construct it exactly as the original run did — same parameters,
    same seed — for replay to reproduce the same state).  With ``strict``
    (default), interior WAL corruption raises :class:`WalCorruptionError`
    after quarantining the damaged segment; with ``strict=False`` replay
    stops at the damage and the partial state is returned.
    """
    with span("recovery.recover"):
        return _recover_inner(directory, factory, strict=strict, fs=fs)


def _recover_inner(
    directory,
    factory: Optional[Callable[[], Any]] = None,
    *,
    strict: bool = True,
    fs: Optional[OsFilesystem] = None,
) -> RecoveryResult:
    if _TEL.enabled:
        _RECOVERIES.inc()
    directory = Path(directory)
    fs = fs or OsFilesystem()
    if not directory.is_dir():
        raise SketchFileError(f"{directory}: not a directory")

    quarantined: List[Path] = []
    snapshot, snapshot_path = _load_newest_snapshot(directory, fs, quarantined)
    if snapshot is not None:
        sketch = snapshot.sketch
        base_seqno = snapshot.seqno
    else:
        if factory is None:
            raise SketchFileError(
                f"{directory}: no usable snapshot and no factory to start from"
            )
        sketch = factory()
        base_seqno = 0

    result = RecoveryResult(
        sketch=sketch,
        last_seqno=base_seqno,
        snapshot_seqno=base_seqno,
        snapshot_path=snapshot_path,
        quarantined=quarantined,
    )

    segments = list_segments(directory)
    for position, path in enumerate(segments):
        is_final = position == len(segments) - 1
        scan: SegmentScan = scan_segment(path)
        if scan.status == "corrupt" or (scan.status == "torn" and not is_final):
            # Interior damage: a closed segment must scan clean end-to-end.
            result.quarantined.append(_quarantine(fs, path, ".quarantine"))
            result.corruption_detail = f"{path.name}: {scan.detail}"
            if strict:
                raise WalCorruptionError(
                    f"{path}: interior WAL corruption ({scan.detail}); "
                    f"segment quarantined as {result.quarantined[-1].name} — "
                    f"records after seqno {result.last_seqno} are lost"
                )
            break  # cannot safely replay anything past the damage
        if scan.status == "torn":
            # Normal crash residue: drop the unacknowledged partial record.
            size = path.stat().st_size
            result.torn_bytes = size - scan.good_bytes
            result.truncated_segment = path
            if scan.good_bytes == 0:
                fs.remove(path)
                fs.fsync_dir(directory)
            else:
                fs.truncate(path, scan.good_bytes)
                fs.fsync_file(path)
        for record in scan.records:
            if record.seqno <= base_seqno:
                result.skipped += 1
                continue
            if record.seqno != result.last_seqno + 1:
                detail = (
                    f"{path.name}: sequence gap — expected "
                    f"{result.last_seqno + 1}, found {record.seqno}"
                )
                result.corruption_detail = detail
                if strict:
                    raise WalCorruptionError(f"{directory}: {detail}")
                return result
            try:
                if isinstance(record, WalBatchRecord):
                    # Same dispatch as ingest: the valid prefix of a
                    # mid-batch-rejected record re-applies identically.
                    apply_stream_batch(
                        sketch, record.values, record.timestamps, record.weights
                    )
                else:
                    apply_stream_update(
                        sketch, record.value, record.timestamp, record.weight
                    )
                result.replayed += 1
                if _TEL.enabled:
                    _REPLAYED.inc()
            except ValueError:
                # The sketch rejected this offer at ingest time too (same
                # state, same record, deterministic validation): skip it.
                result.rejected += 1
            result.last_seqno = record.seqno
    return result
