"""Segmented append-only write-ahead log for sketch ingestion.

On-disk layout, inside a directory::

    wal-00000001.log  wal-00000002.log  ...

Each segment starts with a 24-byte header — magic ``WALSEG01``, the segment
index, and the sequence number of its first record — followed by framed
records::

    [crc32 : u32] [payload length : u32] [seqno : u64] [payload bytes]

The CRC covers the length, seqno, and payload, so any torn or bit-flipped
record is detected at scan time.  There are two payload shapes, both plain
pickles inside the same frame:

* scalar — ``(value, timestamp, weight)``: one stream update; values are
  arbitrary picklable objects (integers, floats, numpy rows);
* batch — ``('BATCH', values, timestamps, weights)``: one *vectorised*
  update of many items under a single sequence number (``weights`` may be
  ``None`` for all-unit weights).  The columns are pickled as the NumPy
  arrays the ingest spine carries (a columnar payload: one dtype header
  plus the raw buffer per column, not per-item object pickles; decoding
  older list-shaped payloads still works).  A batch is atomic in the log:
  it is either fully framed (CRC-clean) or a torn tail, never partially
  visible.

Durability knobs:

* ``fsync_policy='always'`` — fsync after every append; an update that
  returned is on stable storage.
* ``'batch'`` — fsync every ``batch_every`` appends and at every barrier
  (rotation, snapshot, close); bounded loss of the in-flight batch.
* ``'off'`` — never fsync; the OS decides (tests, bulk backfills).

Segments rotate at ``segment_bytes``; old segments are deleted by
``truncate_through(seqno)`` once a snapshot covering them is durable
(:mod:`repro.durability.store` enforces that ordering).

Scanning (:func:`scan_segment`) distinguishes a *torn tail* — a record cut
short at the physical end of the last segment, the normal residue of a crash
mid-append, handled by truncate-and-continue — from *interior corruption*,
which recovery quarantines (:mod:`repro.durability.recovery`).
"""

from __future__ import annotations

import pickle
import re
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

from repro.durability.faults import AppendHandle, OsFilesystem
from repro.telemetry.registry import TELEMETRY as _TEL, timed
from repro.telemetry.spans import span

_RECORDS_APPENDED = _TEL.counter(
    "wal_records_appended_total",
    "Framed records (scalar or batch) appended to the WAL.",
)
_BYTES_APPENDED = _TEL.counter(
    "wal_bytes_appended_total",
    "Framed bytes appended to WAL segments (headers excluded).",
)
_FSYNCS = _TEL.counter(
    "wal_fsyncs_total",
    "fsync calls issued on the active WAL segment.",
)
_ROTATIONS = _TEL.counter(
    "wal_segment_rotations_total",
    "New WAL segments opened (including the first).",
)
_SEGMENTS_REMOVED = _TEL.counter(
    "wal_segments_removed_total",
    "Closed WAL segments deleted by truncation.",
)
_APPEND_SECONDS = _TEL.histogram(
    "wal_append_seconds",
    "Wall time of one framed WAL append (encode + write + any fsync).",
)

SEGMENT_MAGIC = b"WALSEG01"
_SEGMENT_HEADER = struct.Struct(">8sQQ")  # magic, segment index, first seqno
_RECORD_HEADER = struct.Struct(">IIQ")  # crc32, payload length, seqno

_SEGMENT_NAME = re.compile(r"^wal-(\d{8})\.log$")

FSYNC_POLICIES = ("always", "batch", "off")


def segment_name(index: int) -> str:
    return f"wal-{index:08d}.log"


def segment_index(path) -> Optional[int]:
    """The numeric index of a segment file, or None for other files."""
    match = _SEGMENT_NAME.match(Path(path).name)
    return int(match.group(1)) if match else None


def list_segments(directory) -> List[Path]:
    """WAL segment files under ``directory``, in index order."""
    directory = Path(directory)
    found = [
        (segment_index(path), path)
        for path in directory.iterdir()
        if segment_index(path) is not None
    ]
    return [path for _, path in sorted(found)]


BATCH_TAG = "BATCH"


def _frame(payload: bytes, seqno: int) -> bytes:
    body = struct.pack(">IQ", len(payload), seqno) + payload
    return struct.pack(">I", zlib.crc32(body)) + body


def encode_record(value: Any, timestamp: float, weight: float, seqno: int) -> bytes:
    payload = pickle.dumps((value, timestamp, weight), protocol=pickle.HIGHEST_PROTOCOL)
    return _frame(payload, seqno)


def encode_batch_record(values, timestamps, weights, seqno: int) -> bytes:
    """Frame one BATCH record: many items, one seqno, one CRC.

    The columns go into the pickle as handed in — NumPy arrays stay
    arrays, so the payload is columnar (dtype + contiguous buffer) and
    round-trips bit-exactly at replay.
    """
    payload = pickle.dumps(
        (BATCH_TAG, values, timestamps, weights), protocol=pickle.HIGHEST_PROTOCOL
    )
    return _frame(payload, seqno)


@dataclass(frozen=True)
class WalRecord:
    """One decoded scalar WAL record."""

    seqno: int
    value: Any
    timestamp: float
    weight: float


@dataclass(frozen=True)
class WalBatchRecord:
    """One decoded BATCH WAL record (``weights is None`` = all-unit)."""

    seqno: int
    values: Any
    timestamps: Any
    weights: Any = None

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class SegmentScan:
    """Result of scanning one segment file.

    ``status``:
    * ``'ok'``      — every byte accounted for;
    * ``'torn'``    — a record is cut short at the physical end of the file
      (crash mid-append); ``good_bytes`` is the truncation point;
    * ``'corrupt'`` — a CRC/structure violation *before* the end of the
      file, or a bad segment header: interior damage, not a torn tail.
    """

    path: Path
    status: str
    records: List[WalRecord] = field(default_factory=list)
    good_bytes: int = 0
    detail: str = ""
    first_seqno: Optional[int] = None


def scan_segment(path) -> SegmentScan:
    """Parse one segment, classifying any damage (reads the real filesystem)."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _SEGMENT_HEADER.size:
        # A crash while creating the segment leaves a short (often empty)
        # file with no complete records in it — a torn tail of size zero.
        return SegmentScan(path, "torn", [], 0, "segment header cut short")
    magic, index, first_seqno = _SEGMENT_HEADER.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        return SegmentScan(path, "corrupt", [], 0, "bad segment magic")
    records: List[WalRecord] = []
    offset = _SEGMENT_HEADER.size
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < _RECORD_HEADER.size:
            return SegmentScan(
                path, "torn", records, offset,
                f"record header cut short at byte {offset}", first_seqno,
            )
        crc, length, seqno = _RECORD_HEADER.unpack_from(data, offset)
        end = offset + _RECORD_HEADER.size + length
        if end > len(data):
            return SegmentScan(
                path, "torn", records, offset,
                f"record payload cut short at byte {offset}", first_seqno,
            )
        body = data[offset + 4 : end]
        if zlib.crc32(body) != crc:
            status = "torn" if end == len(data) else "corrupt"
            return SegmentScan(
                path, status, records, offset,
                f"CRC mismatch in record at byte {offset}", first_seqno,
            )
        payload = data[offset + _RECORD_HEADER.size : end]
        try:
            decoded = pickle.loads(payload)
            if (
                isinstance(decoded, tuple)
                and len(decoded) == 4
                and decoded[0] == BATCH_TAG
            ):
                record = WalBatchRecord(seqno, decoded[1], decoded[2], decoded[3])
            else:
                value, timestamp, weight = decoded
                record = WalRecord(seqno, value, timestamp, weight)
        except Exception:
            status = "torn" if end == len(data) else "corrupt"
            return SegmentScan(
                path, status, records, offset,
                f"undecodable record payload at byte {offset}", first_seqno,
            )
        if records and seqno != records[-1].seqno + 1:
            return SegmentScan(
                path, "corrupt", records, offset,
                f"sequence break at byte {offset}: "
                f"{records[-1].seqno} then {seqno}", first_seqno,
            )
        records.append(record)
        offset = end
    return SegmentScan(path, "ok", records, offset, "", first_seqno)


class WriteAheadLog:
    """Appender over a directory of rotating, CRC-framed segments.

    ``next_seqno`` lets a recovered store resume numbering where the old log
    left off; appends always start a fresh segment, so a possibly-torn old
    tail is never appended to.
    """

    def __init__(
        self,
        directory,
        fs: Optional[OsFilesystem] = None,
        fsync_policy: str = "batch",
        batch_every: int = 64,
        segment_bytes: int = 1 << 20,
        next_seqno: int = 1,
    ):
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, got {fsync_policy!r}"
            )
        if batch_every < 1:
            raise ValueError(f"batch_every must be >= 1, got {batch_every}")
        if segment_bytes < 1024:
            raise ValueError(f"segment_bytes must be >= 1024, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fs = fs or OsFilesystem()
        self.fsync_policy = fsync_policy
        self.batch_every = batch_every
        self.segment_bytes = segment_bytes
        self.next_seqno = next_seqno
        existing = list_segments(self.directory)
        self._next_segment_index = (
            (segment_index(existing[-1]) + 1) if existing else 1
        )
        # first seqno of every live segment, by index — drives truncation.
        self._segment_first_seqno = {}
        for path in existing:
            scan_first = _peek_first_seqno(path)
            if scan_first is not None:
                self._segment_first_seqno[segment_index(path)] = scan_first
        self._handle: Optional[AppendHandle] = None
        self._unsynced = 0
        self.records_appended = 0
        self.segments_removed = 0

    # -- appending ----------------------------------------------------------

    def append(self, value: Any, timestamp: float, weight: float = 1.0) -> int:
        """Frame and append one scalar record; returns its sequence number.

        The record is on disk (and, under ``'always'``, on stable storage)
        when this returns.  On any I/O error the record is not assigned: the
        caller must not apply the update.
        """
        return self._append_framed(
            lambda seqno: encode_record(value, timestamp, weight, seqno)
        )

    def append_batch(self, values, timestamps, weights=None) -> int:
        """Frame and append one BATCH record; returns its sequence number.

        The whole batch shares a single frame (one CRC, one seqno), so a
        crash mid-append leaves a torn tail covering the *entire* batch —
        recovery drops it whole, never a prefix of it.
        """
        return self._append_framed(
            lambda seqno: encode_batch_record(values, timestamps, weights, seqno)
        )

    @timed(_APPEND_SECONDS)
    def _append_framed(self, encode) -> int:
        # the span nests (per-thread) under whatever caused the append — on
        # a durable shard that is the worker's service.apply_batch span, so
        # an ingest trace extends all the way into the log
        with span("wal.append") as append_span:
            if self._handle is None or self._handle.size >= self.segment_bytes:
                self._rotate()
            seqno = self.next_seqno
            frame = encode(seqno)
            pre_size = self._handle.size
            try:
                self.fs.append(self._handle, frame)
            except BaseException:
                # The write can fail *after* the frame landed (an error
                # surfaced post-write; a simulated crash in "after" mode).
                # Recovery will replay any complete on-disk frame, so the
                # accounting must agree with the disk: a fully-landed frame
                # counts as appended even though the caller sees the error —
                # otherwise the caller re-submits a record that recovery
                # also replays, and the same items apply twice.  A partial
                # frame is a torn tail recovery truncates; leave it
                # unaccounted.
                if self._handle.size >= pre_size + len(frame):
                    self.next_seqno = seqno + 1
                    self.records_appended += 1
                    self._unsynced += 1
                raise
            self.next_seqno = seqno + 1
            self.records_appended += 1
            self._unsynced += 1
            if _TEL.enabled:
                _RECORDS_APPENDED.inc()
                _BYTES_APPENDED.inc(len(frame))
                append_span.set_attr("seqno", seqno)
                append_span.set_attr("bytes", len(frame))
            if self.fsync_policy == "always" or (
                self.fsync_policy == "batch" and self._unsynced >= self.batch_every
            ):
                with span("wal.fsync"):
                    self.fs.fsync(self._handle)
                self._unsynced = 0
                if _TEL.enabled:
                    _FSYNCS.inc()
            return seqno

    def flush(self) -> None:
        """Durability barrier: fsync pending appends (unless policy 'off')."""
        if self._handle is not None and self.fsync_policy != "off" and self._unsynced:
            with span("wal.fsync"):
                self.fs.fsync(self._handle)
            self._unsynced = 0
            if _TEL.enabled:
                _FSYNCS.inc()

    def _rotate(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
        index = self._next_segment_index
        self._next_segment_index += 1
        path = self.directory / segment_name(index)
        self._handle = self.fs.open_append(path)
        self.fs.append(
            self._handle, _SEGMENT_HEADER.pack(SEGMENT_MAGIC, index, self.next_seqno)
        )
        self._segment_first_seqno[index] = self.next_seqno
        if _TEL.enabled:
            _ROTATIONS.inc()
        # Make the new segment's directory entry durable before records go in.
        if self.fsync_policy != "off":
            self.fs.fsync_dir(self.directory)

    # -- truncation ---------------------------------------------------------

    def truncate_through(self, seqno: int) -> List[Path]:
        """Delete closed segments whose records are all covered by ``seqno``.

        Callers must only pass a ``seqno`` covered by a *durable* snapshot —
        this is the WAL-truncation half of the snapshot protocol.  The active
        segment is never removed.  Returns the deleted paths.
        """
        indices = sorted(self._segment_first_seqno)
        removed: List[Path] = []
        for position, index in enumerate(indices):
            is_active = position == len(indices) - 1
            if is_active:
                break
            next_first = self._segment_first_seqno[indices[position + 1]]
            if next_first - 1 > seqno:  # segment holds records beyond seqno
                break
            path = self.directory / segment_name(index)
            self.fs.remove(path)
            del self._segment_first_seqno[index]
            removed.append(path)
            self.segments_removed += 1
            if _TEL.enabled:
                _SEGMENTS_REMOVED.inc()
        if removed and self.fsync_policy != "off":
            self.fs.fsync_dir(self.directory)
        return removed

    # -- lifecycle ----------------------------------------------------------

    def segments(self) -> List[Path]:
        """Live segment files, in index order."""
        return list_segments(self.directory)

    def close(self) -> None:
        """Flush pending appends and release the active segment handle."""
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _peek_first_seqno(path) -> Optional[int]:
    """Read just a segment's header; None if it is too short or not a WAL."""
    try:
        with open(path, "rb") as file:
            header = file.read(_SEGMENT_HEADER.size)
    except OSError:
        return None
    if len(header) < _SEGMENT_HEADER.size:
        return None
    magic, _, first_seqno = _SEGMENT_HEADER.unpack(header)
    return first_seqno if magic == SEGMENT_MAGIC else None


def iter_records(directory) -> Iterator[WalRecord]:
    """Yield records across all clean segments (testing/inspection helper).

    Raises ``ValueError`` on any damage — use
    :func:`repro.durability.recovery.recover` for fault-tolerant reads.
    """
    for path in list_segments(directory):
        scan = scan_segment(path)
        if scan.status != "ok":
            raise ValueError(f"{path}: {scan.status} ({scan.detail})")
        yield from scan.records
