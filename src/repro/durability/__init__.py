"""Crash-safe ingestion for persistent sketches.

A persistent sketch answers "what did the summary look like months ago?" —
which is only meaningful if the summary survives until months later.  This
package wraps any ATTP/BITP sketch in the standard database recipe:

* :class:`WriteAheadLog` — segmented append-only log with per-record CRC32
  framing, configurable fsync policy, and segment rotation;
* :class:`DurableSketch` — log-then-apply ingestion (one record per scalar
  ``update``, or one ``BATCH`` record per ``update_batch`` call), periodic
  framed snapshots (``repro.io`` format), WAL truncation only after a
  snapshot is durably on disk;
* :func:`recover` — newest-valid-snapshot + WAL-tail replay, tolerating a
  torn final record (truncate-and-continue) and quarantining interior
  corruption with precise diagnostics;
* :mod:`~repro.durability.faults` — an injectable filesystem shim used by
  the kill-point sweep in ``tests/durability/test_crash_sweep.py`` to crash
  ingestion at every WAL/snapshot boundary and prove recovery exact.

Quick use::

    from repro.durability import DurableSketch
    from repro.persistent import AttpSampleHeavyHitter

    store = DurableSketch.open(
        lambda: AttpSampleHeavyHitter(k=1000, seed=7), "state/hh",
        fsync_policy="always",
    )
    store.update(key, timestamp)          # durable before applied
    store.heavy_hitters_at(t, 0.01)       # queries forward to the sketch
    store.close()                         # final snapshot + WAL release

After a crash, the same ``DurableSketch.open`` call recovers the exact
pre-crash state.
"""

from repro.durability.faults import (
    FaultPlan,
    FaultyFilesystem,
    InjectedIOError,
    OsFilesystem,
    SimulatedCrash,
)
from repro.durability.manifest import (
    ServiceManifest,
    read_manifest,
    write_manifest,
)
from repro.durability.recovery import (
    RecoveryResult,
    Snapshot,
    WalCorruptionError,
    list_snapshots,
    recover,
)
from repro.durability.store import DurableSketch
from repro.durability.wal import (
    WalBatchRecord,
    WalRecord,
    WriteAheadLog,
    iter_records,
    list_segments,
    scan_segment,
)

__all__ = [
    "DurableSketch",
    "FaultPlan",
    "FaultyFilesystem",
    "InjectedIOError",
    "OsFilesystem",
    "RecoveryResult",
    "ServiceManifest",
    "SimulatedCrash",
    "Snapshot",
    "WalBatchRecord",
    "WalCorruptionError",
    "WalRecord",
    "WriteAheadLog",
    "iter_records",
    "list_segments",
    "list_snapshots",
    "read_manifest",
    "recover",
    "scan_segment",
    "write_manifest",
]
