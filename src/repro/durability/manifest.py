"""Service manifest: the durable description of a sharded deployment.

A durably-configured :class:`repro.service.ShardedSketchService` keeps one
``DurableSketch`` directory per shard (``shard-00/``, ``shard-01/``, ...).
Recovery must reassemble the *same* topology — shard count, partitioning
mode, and router seed — or hash-routed queries would consult the wrong
shard.  The manifest records that topology as a small JSON file written
atomically (temp file + rename + directory fsync) through the same
filesystem shim the WAL uses, so kill-point sweeps exercise it too.

The manifest is written once at service creation and validated on every
re-open; a mismatch between the caller's configuration and the on-disk
manifest is a hard error rather than silent data corruption.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.durability.faults import OsFilesystem

MANIFEST_NAME = "service.json"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ServiceManifest:
    """Immutable topology record for a sharded service directory.

    Attributes
    ----------
    num_shards:
        Number of shard subdirectories (``shard-00`` .. ``shard-NN``).
    partition:
        Router mode, ``"hash"`` or ``"round_robin"``.
    seed:
        Router hash seed; must match across restarts so keys keep routing
        to the shard that owns their history.
    backend:
        Shard execution backend the service last ran with (``"thread"``
        or ``"process"``).  Informational, not validated: either backend
        reads the same shard directories (the WAL/snapshot format is
        backend-neutral), so re-opening under a different backend is
        legal and simply rewrites this field.  Manifests written before
        the field existed read as ``"thread"``.
    version:
        On-disk format version for forward compatibility.
    """

    num_shards: int
    partition: str
    seed: int
    backend: str = "thread"
    version: int = _FORMAT_VERSION

    def shard_directory(self, root, shard: int) -> Path:
        """Path of ``shard``'s DurableSketch directory under ``root``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.num_shards})")
        return Path(root) / f"shard-{shard:02d}"


def write_manifest(directory, manifest: ServiceManifest, fs: Optional[OsFilesystem] = None) -> Path:
    """Atomically persist ``manifest`` as ``directory/service.json``.

    Uses ``write_atomic`` (temp + rename + dir fsync) so a crash leaves
    either the old manifest or the new one, never a torn file.
    """
    fs = fs or OsFilesystem()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    payload = json.dumps(asdict(manifest), indent=2, sort_keys=True) + "\n"
    fs.write_atomic(path, payload.encode("utf-8"))
    return path


def read_manifest(directory) -> Optional[ServiceManifest]:
    """Load the manifest from ``directory``, or ``None`` if absent.

    Raises
    ------
    ValueError
        If the file exists but is not a valid manifest (corrupt JSON,
        missing fields, or an unknown format version).
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        raw = json.loads(path.read_text("utf-8"))
        manifest = ServiceManifest(**raw)
    except (json.JSONDecodeError, TypeError) as exc:
        raise ValueError(f"corrupt service manifest at {path}: {exc}") from exc
    if manifest.version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported manifest version {manifest.version} at {path} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    return manifest
