"""Count sketch (Charikar, Chen & Farach-Colton, 2002).

Like CountMin but each update is multiplied by a random sign, and the point
estimate is the *median* over rows.  The error scales with the L2 norm of the
frequency vector rather than the L1 norm, which is much smaller on skewed
streams.  The sketch is linear, hence mergeable and deletion-tolerant.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.hashing import HashFamily, next_pow2_bits
from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("countsketch")


class CountSketch:
    """Count sketch frequency estimator over integer keys."""

    def __init__(self, width: int, depth: int = 5, seed: int = 0):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self._bits = next_pow2_bits(width)
        self.width = 1 << self._bits
        self.depth = depth
        self.seed = seed
        family = HashFamily(seed)
        self._hashes = [family.draw_multiply_shift(self._bits) for _ in range(depth)]
        self._signs = [family.draw_sign() for _ in range(depth)]
        self._table = np.zeros((depth, self.width), dtype=np.int64)
        self.total_weight = 0

    @classmethod
    def from_error(cls, eps: float, delta: float = 0.01, seed: int = 0) -> "CountSketch":
        """Size for additive error ``eps * ||f||_2`` w.p. ``1 - delta``."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        width = math.ceil(3.0 / eps**2)
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width, depth, seed=seed)

    def update(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` (may be negative) to ``key``'s count."""
        for r in range(self.depth):
            self._table[r, self._hashes[r](key)] += self._signs[r](key) * weight
        self.total_weight += weight
        if _TEL.enabled:
            _UPDATES.inc()

    def update_batch(self, keys, weights=None) -> None:
        """Vectorised bulk :meth:`update`; counter-exact vs the scalar loop.

        Per row: one vectorized bucket hash, one vectorized sign hash, one
        scatter-add of ``sign * weight``.  Integer weights, like the table.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = int(keys.size)
        if n == 0:
            return
        weight_array = (
            np.ones(n, dtype=np.int64)
            if weights is None
            else np.asarray(weights, dtype=np.int64)
        )
        if weight_array.size != n:
            raise ValueError(
                f"keys and weights length mismatch: {n} vs {weight_array.size}"
            )
        for r in range(self.depth):
            buckets = self._hashes[r](keys)
            signed = self._signs[r](keys) * weight_array
            np.add.at(self._table[r], buckets, signed)
        self.total_weight += int(weight_array.sum())
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)

    def query(self, key: int) -> int:
        """Median-of-rows point estimate of ``key``'s total weight."""
        if _TEL.enabled:
            _QUERIES.inc()
        estimates = [
            self._signs[r](key) * self._table[r, self._hashes[r](key)]
            for r in range(self.depth)
        ]
        return int(np.median(estimates))

    def merge(self, other: "CountSketch") -> None:
        """Add another sketch's counters into this one (linear merge)."""
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError("Count sketches differ in shape or seed; cannot merge")
        self._table += other._table
        self.total_weight += other.total_weight

    def counters(self) -> np.ndarray:
        """The raw counter table (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 8 bytes per counter."""
        return self._table.size * 8

    def __len__(self) -> int:
        return self._table.size
