"""Frequent Directions matrix sketch (Ghashami, Liberty, Phillips & Woodruff, 2016).

Maintains an ``ell x d`` matrix ``B`` summarising the rows seen so far such
that ``||A^T A - B^T B||_2 <= ||A||_F^2 / ell`` — i.e. an eps-MC sketch with
``ell = ceil(1/eps)`` rows.  Two variants:

* :class:`FrequentDirections` — the "slow" ell-row version used verbatim by
  the paper's Algorithm 1 (PFD needs the top residual direction in row 0
  after *every* update).
* :class:`FastFrequentDirections` — the practical 2*ell-row buffered variant
  that amortises the SVD cost.

Both are mergeable: stack the two sketches and shrink back to ell rows.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("frequent_directions")
_FAST_UPDATES, _FAST_BATCHES, _FAST_BATCH_ITEMS, _FAST_QUERIES = sketch_metrics(
    "fast_frequent_directions"
)


def _shrink(stacked: np.ndarray, ell: int) -> np.ndarray:
    """One FD shrink step: SVD, subtract the ell-th squared singular value.

    Returns an ``ell x d`` matrix whose rows are the shrunken principal
    directions; trailing zero rows are kept so callers can write into them.
    """
    _, svals, vt = np.linalg.svd(stacked, full_matrices=False)
    if len(svals) <= ell:
        out = np.zeros((ell, stacked.shape[1]))
        out[: len(svals)] = svals[:, None] * vt
        return out
    delta = svals[ell - 1] ** 2
    kept = np.sqrt(np.maximum(svals[:ell] ** 2 - delta, 0.0))
    return kept[:, None] * vt[:ell]


class FrequentDirections:
    """Slow (ell-row, SVD-per-update) Frequent Directions sketch.

    After every :meth:`update` the sketch rows are the singular directions of
    the shrunken summary in non-increasing singular-value order, so row 0 is
    always the current top direction — the property Algorithm 1 (PFD) needs.
    """

    def __init__(self, ell: int, dim: int):
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.ell = ell
        self.dim = dim
        self._rows = np.zeros((ell, dim))
        self._filled = 0
        self.squared_frobenius = 0.0  # of the input stream, not the sketch

    def update(self, row: np.ndarray) -> None:
        """Append one ``d``-dimensional row and re-shrink."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.dim,):
            raise ValueError(f"expected a row of shape ({self.dim},), got {row.shape}")
        self.squared_frobenius += float(row @ row)
        if _TEL.enabled:
            _UPDATES.inc()
        if self._filled < self.ell:
            self._rows[self._filled] = row
            self._filled += 1
            if self._filled < self.ell:
                return
            self._rows = _shrink(self._rows, self.ell)
            return
        stacked = np.vstack([self._rows, row[None, :]])
        self._rows = _shrink(stacked, self.ell)

    def sketch_matrix(self) -> np.ndarray:
        """Current ``ell x d`` sketch matrix ``B`` (copy)."""
        if self._filled < self.ell:
            # Not yet shrunk: report rows in spectral order for consistency.
            return _shrink(self._rows.copy(), self.ell)
        return self._rows.copy()

    def covariance(self) -> np.ndarray:
        """``B^T B``, the estimate of ``A^T A``."""
        if _TEL.enabled:
            _QUERIES.inc()
        b = self.sketch_matrix()
        return b.T @ b

    def top_direction(self) -> tuple:
        """``(sigma_squared, v)`` for the sketch's leading direction."""
        b = self.sketch_matrix()
        norms = np.einsum("ij,ij->i", b, b)
        top = int(np.argmax(norms))
        sigma_sq = float(norms[top])
        if sigma_sq == 0.0:
            return 0.0, np.zeros(self.dim)
        return sigma_sq, b[top] / np.sqrt(sigma_sq)

    def remove_top_direction(self) -> np.ndarray:
        """Pop the leading row ``sigma * v`` out of the sketch and return it.

        Used by PFD's partial checkpoints: the returned vector ``b`` satisfies
        ``b b^T = sigma^2 v v^T`` and is subtracted from the summary.
        """
        b = self.sketch_matrix()
        norms = np.einsum("ij,ij->i", b, b)
        top = int(np.argmax(norms))
        spilled = b[top].copy()
        b[top] = 0.0
        order = np.argsort(-np.einsum("ij,ij->i", b, b), kind="stable")
        self._rows = b[order]
        self._filled = self.ell
        return spilled

    def merge(self, other: "FrequentDirections") -> None:
        """Merge another FD sketch (same ell, dim) into this one."""
        if (self.ell, self.dim) != (other.ell, other.dim):
            raise ValueError("FD sketches differ in shape; cannot merge")
        stacked = np.vstack([self.sketch_matrix(), other.sketch_matrix()])
        self._rows = _shrink(stacked, self.ell)
        self._filled = self.ell
        self.squared_frobenius += other.squared_frobenius

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 8 bytes per matrix entry."""
        return self.ell * self.dim * 8

    def __len__(self) -> int:
        return self.ell


class FastFrequentDirections:
    """Buffered Frequent Directions using ``2*ell`` rows, SVD every ell updates.

    Same error bound as :class:`FrequentDirections` with ~ell-fold fewer SVDs;
    rows are only in spectral order right after a shrink.
    """

    def __init__(self, ell: int, dim: int):
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.ell = ell
        self.dim = dim
        self._buffer = np.zeros((2 * ell, dim))
        self._filled = 0
        self.squared_frobenius = 0.0

    def update(self, row: np.ndarray) -> None:
        """Append one row; shrinks only when the 2*ell buffer fills."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.dim,):
            raise ValueError(f"expected a row of shape ({self.dim},), got {row.shape}")
        self.squared_frobenius += float(row @ row)
        if _TEL.enabled:
            _FAST_UPDATES.inc()
        if self._filled == 2 * self.ell:
            self._compress()
        self._buffer[self._filled] = row
        self._filled += 1

    def _compress(self) -> None:
        shrunk = _shrink(self._buffer[: self._filled], self.ell)
        self._buffer[: self.ell] = shrunk
        self._buffer[self.ell :] = 0.0
        self._filled = self.ell

    def sketch_matrix(self) -> np.ndarray:
        """Current ``ell x d`` sketch matrix (forces a compress)."""
        if self._filled > self.ell:
            self._compress()
        return _shrink(self._buffer[: max(self._filled, 1)].copy(), self.ell)

    def covariance(self) -> np.ndarray:
        """``B^T B``, the estimate of ``A^T A``."""
        if _TEL.enabled:
            _FAST_QUERIES.inc()
        b = self.sketch_matrix()
        return b.T @ b

    def merge(self, other: "FastFrequentDirections") -> None:
        """Merge another fast-FD sketch (same ell, dim) into this one."""
        if (self.ell, self.dim) != (other.ell, other.dim):
            raise ValueError("FD sketches differ in shape; cannot merge")
        stacked = np.vstack([self.sketch_matrix(), other.sketch_matrix()])
        shrunk = _shrink(stacked, self.ell)
        self._buffer[: self.ell] = shrunk
        self._buffer[self.ell :] = 0.0
        self._filled = self.ell
        self.squared_frobenius += other.squared_frobenius

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 8 bytes per buffer entry."""
        return 2 * self.ell * self.dim * 8

    def __len__(self) -> int:
        return self.ell
