"""Streaming sketch substrate.

This subpackage implements, from scratch, the classic streaming sketches the
paper builds its persistent variants on: CountMin, Count sketch, Misra-Gries,
SpaceSaving, Frequent Directions, KLL quantiles, reservoir / priority
sampling, and a Bloom filter.  Every sketch follows the small protocol set in
:mod:`repro.core.base` (``update`` / ``query`` / ``memory_bytes``), and the
mergeable ones additionally implement ``merge``.
"""

from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.dyadic import DyadicCountMin
from repro.sketches.frequent_directions import FastFrequentDirections, FrequentDirections
from repro.sketches.hashing import HashFamily, MultiplyShiftHash, SignHash
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kll import KllSketch
from repro.sketches.misra_gries import MisraGries
from repro.sketches.priority import PrioritySample
from repro.sketches.reservoir import ReservoirSample, TopKPrioritySample
from repro.sketches.spacesaving import SpaceSaving
from repro.sketches.weighted_reservoir import WeightedReservoirWR

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "CountSketch",
    "DyadicCountMin",
    "FastFrequentDirections",
    "FrequentDirections",
    "HashFamily",
    "HyperLogLog",
    "KllSketch",
    "MisraGries",
    "MultiplyShiftHash",
    "PrioritySample",
    "ReservoirSample",
    "SignHash",
    "SpaceSaving",
    "TopKPrioritySample",
    "WeightedReservoirWR",
]
