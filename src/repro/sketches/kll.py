"""KLL quantile sketch (Karnin, Lang & Liberty, 2016).

A hierarchy of compactor buffers: level ``h`` stores items with weight
``2**h``; when a level fills it sorts its buffer and promotes every other
item (random even/odd offset) to level ``h+1``.  Capacities decay
geometrically (ratio 2/3) below the top so the total space is ``O(k)`` while
the rank error is ``eps = O(1/k)`` with high probability.  Mergeable by
concatenating levels and re-compacting.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("kll")

_DECAY = 2.0 / 3.0

#: Largest integer magnitude float64 represents exactly; numeric batches
#: beyond it take the scalar-equivalent fallback instead of losing bits.
_EXACT_FLOAT = 2**53


@functools.lru_cache(maxsize=None)
def _caps(k: int, height: int) -> tuple:
    """Per-level capacities for a ``height``-level hierarchy (top-anchored)."""
    return tuple(
        max(2, math.ceil(k * _DECAY ** (height - 1 - level)))
        for level in range(height)
    )


def _exact_numeric(arr: np.ndarray) -> bool:
    """True when float64 holds every value of ``arr`` exactly (no NaN).

    Checked on the *original* dtype: integer magnitudes must fit in the
    53-bit mantissa (the float64 conversion would round silently), floats
    only need to be NaN-free (NaN does not sort deterministically; +/-inf
    sort fine and convert exactly).
    """
    kind = arr.dtype.kind
    if kind == "b":
        return True
    if kind in "iu":
        return arr.size == 0 or (
            int(arr.max()) <= _EXACT_FLOAT and int(arr.min()) >= -_EXACT_FLOAT
        )
    if kind != "f" or arr.dtype.itemsize > 8:
        return False
    return arr.size == 0 or not bool(np.isnan(arr).any())


def _execute_level(stream: np.ndarray, sizes_list: list, coins_list: list):
    """Run one level's scheduled compactions over its incoming ``stream``.

    ``sizes_list``/``coins_list`` are the time-ordered per-compaction
    buffer sizes and coins from phase 1; compaction ``i`` consumes the
    next ``sizes_list[i]`` items of ``stream``.  All segments are laid out
    as rows of one matrix — padded with ``+inf`` to a common even width
    when sizes are odd or mixed — then a single axis-1 sort plus one
    coin-steered even/odd column select does every compaction at once.
    The pad is sound because ``+inf`` sorts to the tail of each row
    (ties with real ``inf`` pick equal values either way; NaN never
    reaches this path) and the per-row output length ``(size-coin+1)//2``
    masks any selected pad entries off.  Returns ``(promoted, leftover)``:
    every compaction's output concatenated *in time order*, and the items
    left in the buffer afterwards.  Never mutates ``stream``.
    """
    m = len(sizes_list)
    if m == 0:
        return None, stream
    if m <= 4:
        # few segments: per-segment sorts beat the matrix set-up cost
        outs = []
        start = 0
        for size, coin in zip(sizes_list, coins_list):
            seg = np.sort(stream[start : start + size])
            outs.append(seg[coin::2])
            start += size
        promoted = outs[0] if m == 1 else np.concatenate(outs)
        return promoted, stream[start:]
    seg_coins = np.asarray(coins_list, dtype=np.intp)
    size = sizes_list[0]
    if sizes_list.count(size) == m:
        total = m * size
        if size % 2 == 0:
            # uniform even: reshape + sort + select, no pad, no mask
            mat = np.sort(np.reshape(stream[:total], (m, size)), axis=1)
            chosen = np.where(
                (seg_coins == 0)[:, None], mat[:, 0::2], mat[:, 1::2]
            )
            return chosen.ravel(), stream[total:]
        width = size + 1
        mat = np.empty((m, width), dtype=stream.dtype)
        mat[:, :size] = np.reshape(stream[:total], (m, size))
        mat[:, size] = np.inf
        out_lens = (size + 1 - seg_coins) >> 1
    else:
        seg_sizes = np.asarray(sizes_list, dtype=np.intp)
        total = int(seg_sizes.sum())
        width = max(sizes_list)
        width += width & 1
        if m * width > 2 * total:
            # size-skewed schedule (giant batches span hierarchy growths,
            # so early segments dwarf late ones): padding everything to
            # the max would cost O(m * max); group by size instead
            return _execute_level_grouped(stream, seg_sizes, seg_coins, total)
        mat = np.full((m, width), np.inf, dtype=stream.dtype)
        mat[np.arange(width) < seg_sizes[:, None]] = stream[:total]
        out_lens = (seg_sizes + 1 - seg_coins) >> 1
    mat.sort(axis=1)
    chosen = np.where((seg_coins == 0)[:, None], mat[:, 0::2], mat[:, 1::2])
    promoted = chosen[np.arange(width >> 1) < out_lens[:, None]]
    return promoted, stream[total:]


def _execute_level_grouped(
    stream: np.ndarray, seg_sizes: np.ndarray, seg_coins: np.ndarray, total: int
):
    """Pad-and-sort each equal-size segment group on its own matrix.

    Used when segment sizes are too skewed for one shared pad width.
    Each group is gathered, sorted, and selected exactly like the uniform
    paths; outputs are scattered back into their time-order positions in
    the shared ``promoted`` array.
    """
    bounds = np.cumsum(seg_sizes)
    starts = bounds - seg_sizes
    out_lens = (seg_sizes + 1 - seg_coins) >> 1
    out_bounds = np.cumsum(out_lens)
    out_starts = out_bounds - out_lens
    promoted = np.empty(int(out_bounds[-1]), dtype=stream.dtype)
    for size in np.unique(seg_sizes):
        size = int(size)
        sel = np.nonzero(seg_sizes == size)[0]
        mat = stream[starts[sel, None] + np.arange(size)]
        coins = seg_coins[sel]
        if size % 2 == 0:
            mat.sort(axis=1)
            chosen = np.where((coins == 0)[:, None], mat[:, 0::2], mat[:, 1::2])
            promoted[out_starts[sel, None] + np.arange(size >> 1)] = chosen
            continue
        padded = np.empty((len(sel), size + 1), dtype=stream.dtype)
        padded[:, :size] = mat
        padded[:, size] = np.inf
        padded.sort(axis=1)
        chosen = np.where((coins == 0)[:, None], padded[:, 0::2], padded[:, 1::2])
        lens = out_lens[sel]
        vals = chosen[np.arange((size + 1) >> 1) < lens[:, None]]
        cum = np.cumsum(lens)
        flat = (
            np.arange(int(cum[-1]))
            - np.repeat(cum - lens, lens)
            + np.repeat(out_starts[sel], lens)
        )
        promoted[flat] = vals
    return promoted, stream[total:]


class KllSketch:
    """Mergeable eps-quantile sketch over items with a total order."""

    #: Class-level default so instances restored from older pickles (which
    #: lack the attribute) conservatively revalidate their levels.
    _float_safe = False

    def __init__(self, k: int = 200, seed: int = 0):
        if k < 4:
            raise ValueError(f"k must be >= 4, got {k}")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._levels: list = [[]]
        self.count = 0
        # Levels are known float64-exact (empty); scalar update/merge
        # clear this, and the vectorized batch path revalidates lazily.
        self._float_safe = True

    @classmethod
    def from_error(cls, eps: float, seed: int = 0) -> "KllSketch":
        """Size for rank error ``eps * n``; in practice ``k ~ 2/eps`` suffices."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        return cls(max(4, math.ceil(2.0 / eps)), seed=seed)

    def _capacity(self, level: int) -> int:
        depth_below_top = len(self._levels) - 1 - level
        return max(2, math.ceil(self.k * _DECAY**depth_below_top))

    def update(self, item) -> None:
        """Insert one item."""
        self.count += 1
        self._float_safe = False
        self._levels[0].append(item)
        if _TEL.enabled:
            _UPDATES.inc()
        if len(self._levels[0]) >= self._capacity(0):
            self._compress()

    def update_batch(self, items) -> None:
        """Bulk insert, state- and RNG-identical to the scalar loop.

        Numeric batches take a fully vectorized two-phase path (see
        :meth:`_update_batch_vectorized`): the compaction *schedule* is
        simulated on buffer sizes alone with one bulk coin draw, then the
        data movement executes level by level as whole-matrix sorts.  The
        resulting levels, count, and RNG position are bit-identical to the
        scalar loop's.  Non-numeric items (or numerics float64 cannot hold
        exactly) fall back to the chunked scalar-order path.
        """
        n = len(items)
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)
        if n == 0:
            return
        batch = self._as_exact_floats(items)
        if batch is None:
            self._update_batch_chunked(items)
            return
        self._update_batch_vectorized(batch)

    def _as_exact_floats(self, items):
        """``items`` (and the retained levels) as exact float64, or None.

        The vectorized path works in float64 throughout; it is only taken
        when that conversion is value-exact — see :func:`_exact_numeric`.
        Level revalidation is cached in ``_float_safe``: the vectorized
        path only ever leaves exact floats behind, so the scan is repeated
        only after a scalar :meth:`update`, :meth:`merge`, or fallback
        batch let arbitrary items in.
        """
        try:
            arr = np.asarray(items)
        except (TypeError, ValueError):
            return None
        if arr.ndim != 1 or not _exact_numeric(arr):
            return None
        if not self._float_safe:
            for buf in self._levels:
                if buf:
                    try:
                        level = np.asarray(buf)
                    except (TypeError, ValueError):
                        return None
                    if level.ndim != 1 or not _exact_numeric(level):
                        return None
            self._float_safe = True
        return arr.astype(np.float64, copy=False)

    def _update_batch_chunked(self, items) -> None:
        """Scalar-order batch insert (the pre-vectorization path).

        Appends in chunks that fill level 0 exactly to its capacity before
        each compaction — the same points at which the scalar path compacts
        — so the compaction (and coin-flip) sequence is unchanged.  Used
        for item dtypes the vectorized path cannot represent exactly.
        """
        self._float_safe = False
        n = len(items)
        position = 0
        while position < n:
            buffer = self._levels[0]
            room = self._capacity(0) - len(buffer)
            if room <= 0:
                self._compress()
                continue
            take = min(room, n - position)
            buffer.extend(items[position : position + take])
            self.count += take
            position += take
            if len(buffer) >= self._capacity(0):
                self._compress()

    def _update_batch_vectorized(self, batch: np.ndarray) -> None:
        """Two-phase vectorized insert, bit-identical to the scalar loop.

        Phase 1 — *schedule*: replay the scalar fill/compact loop on
        buffer **sizes** only (pure integer arithmetic; no data moves),
        consuming coins from one bulk RNG draw in the exact order the
        scalar cascade would, and recording ``(buffer_size, coin)`` per
        compaction per level.  Compaction triggers depend only on sizes —
        a coin affects sizes only through the promoted count
        ``(size - coin + 1) // 2`` — so the schedule is exact.  The bulk
        draw is repaired afterwards (state restore + one draw of exactly
        the consumed length), leaving the generator at the same position
        as the scalar loop's per-compaction draws.

        Phase 2 — *execute*: process levels bottom-up.  Each level's
        incoming stream is its old buffer plus, in arrival order, the
        promotions emitted by the level below (level 0: plus the batch);
        each scheduled compaction consumes the next ``buffer_size`` items
        of that stream.  Same-sized segments are gathered into one
        ``(segments, size)`` matrix, sorted along axis 1, and the
        even/odd-offset columns selected per coin — whole levels of
        compactions become three NumPy ops.  Out-of-(time-)order
        execution is sound because every compaction's input segment and
        coin are already fixed by phase 1.
        """
        n = len(batch)
        k = self.k
        rng = self._rng
        sizes = [len(buf) for buf in self._levels]
        height = len(sizes)
        caps = _caps(k, height)
        sched_sizes: list = [[] for _ in range(height)]
        sched_coins: list = [[] for _ in range(height)]

        # Bulk coin prefetch, repaired to the exact consumed length below.
        # Expected consumption is well under n/2 coins (one per compaction,
        # each compaction eats >= 2 items); the hot loops double on overrun.
        saved_state = rng.bit_generator.state
        coins = rng.integers(0, 2, size=(n >> 1) + 64).tolist()
        ncoins = len(coins)
        ci = 0
        # Sizes are anonymous, so the partial level-0 buffer folds into the
        # item pool: the first compaction still lands after exactly
        # ``caps[0] - len(levels[0])`` new items, and the final ``pool %
        # caps[0]`` leftover is the retained partial buffer.
        pool = n

        # Only *compactions* are observable (coins + schedule); the scalar
        # fixpoint scans cost nothing to skip.  Entry invariant: only
        # level 0 reaches capacity between compactions, and compacting
        # level L can push only L+1 over — so one upward cascade IS the
        # scalar pass, and the fixpoint re-scan is free unless the
        # hierarchy grows (which shrinks lower caps; rare, handled by
        # _sim_grow_fixpoint).  The outer loop restarts after each growth
        # with the new capacities.
        while True:
            if height == 1:
                # the only level is the top: its first compaction grows
                take = caps[0] - sizes[0]
                if pool < take:
                    sizes[0] += pool
                    break
                pool -= take
                if ci == ncoins:
                    coins.extend(rng.integers(0, 2, size=ncoins).tolist())
                    ncoins += ncoins
                coin = coins[ci]
                ci += 1
                sched_sizes[0].append(caps[0])
                sched_coins[0].append(coin)
                sizes[0] = 0
                sizes.append((caps[0] - coin + 1) >> 1)
                sched_sizes.append([])
                sched_coins.append([])
                height = 2
                caps = _caps(k, 2)
                height, caps, ci, ncoins = self._sim_grow_fixpoint(
                    1, sizes, sched_sizes, sched_coins, height, caps, coins, ci, ncoins
                )
                continue
            c0 = caps[0]
            cap1 = caps[1]
            half = ((c0 + 1) >> 1, c0 >> 1)
            sc0s = sched_sizes[0]
            sc0c = sched_coins[0]
            sc1s = sched_sizes[1]
            sc1c = sched_coins[1]
            s1 = sizes[1]
            pool += sizes[0]
            sizes[0] = 0
            grew = False
            while pool >= c0:
                pool -= c0
                if ci == ncoins:
                    coins.extend(rng.integers(0, 2, size=ncoins).tolist())
                    ncoins += ncoins
                coin = coins[ci]
                ci += 1
                sc0c.append(coin)
                s1 += half[coin]
                if s1 < cap1:
                    continue
                # level 1 filled: compact it, cascading as far as needed
                if ci == ncoins:
                    coins.extend(rng.integers(0, 2, size=ncoins).tolist())
                    ncoins += ncoins
                coin = coins[ci]
                ci += 1
                sc1s.append(s1)
                sc1c.append(coin)
                promo = (s1 - coin + 1) >> 1
                s1 = 0
                sizes[1] = 0
                if height == 2:
                    sizes.append(promo)
                    sched_sizes.append([])
                    sched_coins.append([])
                    height = 3
                    caps = _caps(k, 3)
                    height, caps, ci, ncoins = self._sim_grow_fixpoint(
                        2, sizes, sched_sizes, sched_coins,
                        height, caps, coins, ci, ncoins,
                    )
                    grew = True
                    break
                s2 = sizes[2] + promo
                sizes[2] = s2
                if s2 < caps[2]:
                    continue
                level = 2
                while True:
                    if ci == ncoins:
                        coins.extend(rng.integers(0, 2, size=ncoins).tolist())
                        ncoins += ncoins
                    coin = coins[ci]
                    ci += 1
                    size = sizes[level]
                    sched_sizes[level].append(size)
                    sched_coins[level].append(coin)
                    sizes[level] = 0
                    promo = (size - coin + 1) >> 1
                    if level + 1 == height:
                        sizes.append(promo)
                        sched_sizes.append([])
                        sched_coins.append([])
                        height += 1
                        caps = _caps(k, height)
                        height, caps, ci, ncoins = self._sim_grow_fixpoint(
                            level + 2, sizes, sched_sizes, sched_coins,
                            height, caps, coins, ci, ncoins,
                        )
                        grew = True
                        break
                    sizes[level + 1] += promo
                    level += 1
                    if sizes[level] < caps[level]:
                        break
                if grew:
                    break
            # level-0 sizes are the (constant) capacity all segment long;
            # backfill them in one C-level extend instead of per append
            sc0s.extend([c0] * (len(sc0c) - len(sc0s)))
            if grew:
                continue
            sizes[0] = pool
            sizes[1] = s1
            break

        # repair the RNG: restore and draw exactly what the scalar loop
        # would have — position and values both match the scalar path
        rng.bit_generator.state = saved_state
        if ci:
            rng.integers(0, 2, size=ci)

        # phase 2: execute the schedule level by level, bottom-up
        new_levels: list = []
        promoted = batch
        for level in range(height):
            old_list = self._levels[level] if level < len(self._levels) else []
            incoming = promoted is not None and len(promoted) > 0
            if not sched_sizes[level] and not incoming:
                # untouched level: keep the original buffer object as-is
                new_levels.append(old_list)
                promoted = None
                continue
            if old_list:
                old = np.asarray(old_list, dtype=np.float64)
                stream = np.concatenate([old, promoted]) if incoming else old
            else:
                stream = promoted if incoming else np.empty(0, dtype=np.float64)
            promoted, leftover = _execute_level(
                stream, sched_sizes[level], sched_coins[level]
            )
            new_levels.append(leftover.tolist())
        self._levels = new_levels
        self.count += n

    def _sim_grow_fixpoint(
        self, level, sizes, sched_sizes, sched_coins, height, caps, coins, ci, ncoins
    ):
        """Rare continuation of the phase-1 simulation after hierarchy growth.

        Growing the hierarchy shrinks lower-level capacities (the decay is
        top-anchored), so the scalar loop finishes its current scan pass
        from ``level`` and then runs full passes to a fixpoint.  This
        transcribes that exactly — same compaction order, same coin order
        — on sizes alone.  Mutates ``sizes``/``sched_*``/``coins`` in
        place and returns the updated ``(height, caps, ci, ncoins)``.
        """
        rng = self._rng
        k = self.k
        first_pass = True
        while True:
            compacted = False
            while level < height:
                if sizes[level] >= caps[level]:
                    if ci == ncoins:
                        coins.extend(rng.integers(0, 2, size=ncoins).tolist())
                        ncoins += ncoins
                    coin = coins[ci]
                    ci += 1
                    size = sizes[level]
                    sched_sizes[level].append(size)
                    sched_coins[level].append(coin)
                    sizes[level] = 0
                    if level + 1 == height:
                        sizes.append(0)
                        sched_sizes.append([])
                        sched_coins.append([])
                        height += 1
                        caps = _caps(k, height)
                    sizes[level + 1] += (size - coin + 1) >> 1
                    compacted = True
                level += 1
            if not first_pass and not compacted:
                return height, caps, ci, ncoins
            first_pass = False
            level = 0

    def _compress(self) -> None:
        # Runs to a fixpoint: growing the hierarchy shrinks lower-level
        # capacities (the 2/3 decay is anchored at the top), so one pass can
        # leave an earlier level over its new capacity.  Stabilizing here
        # means the *only* compaction trigger is level 0 filling up, which
        # makes chunked batch insertion take the identical compaction (and
        # coin-flip) sequence as the scalar loop.
        compacted = True
        while compacted:
            compacted = False
            level = 0
            while level < len(self._levels):
                buf = self._levels[level]
                if len(buf) < self._capacity(level):
                    level += 1
                    continue
                buf.sort()
                offset = int(self._rng.integers(0, 2))
                promoted = buf[offset::2]
                self._levels[level] = []
                if level + 1 == len(self._levels):
                    self._levels.append([])
                self._levels[level + 1].extend(promoted)
                compacted = True
                level += 1

    def merge(self, other: "KllSketch") -> None:
        """Merge another KLL sketch (same ``k``) into this one."""
        if self.k != other.k:
            raise ValueError(f"cannot merge KLL sketches with k={self.k} and k={other.k}")
        self._float_safe = False
        while len(self._levels) < len(other._levels):
            self._levels.append([])
        for level, buf in enumerate(other._levels):
            self._levels[level].extend(buf)
        self.count += other.count
        self._compress()

    def _weighted_items(self) -> list:
        """All retained ``(item, weight)`` pairs, sorted by item."""
        pairs = []
        for level, buf in enumerate(self._levels):
            weight = 1 << level
            pairs.extend((item, weight) for item in buf)
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def rank(self, value) -> float:
        """Estimated number of items ``<= value``."""
        if _TEL.enabled:
            _QUERIES.inc()
        total = 0
        for level, buf in enumerate(self._levels):
            weight = 1 << level
            total += weight * sum(1 for item in buf if item <= value)
        return float(total)

    def cdf(self, value) -> float:
        """Estimated fraction of items ``<= value``."""
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        return self.rank(value) / self.count

    def quantile(self, phi: float):
        """Estimated ``phi``-quantile, ``phi in [0, 1]``."""
        if not 0 <= phi <= 1:
            raise ValueError(f"phi must be in [0, 1], got {phi}")
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        if _TEL.enabled:
            _QUERIES.inc()
        pairs = self._weighted_items()
        target = phi * sum(weight for _, weight in pairs)
        cumulative = 0
        for item, weight in pairs:
            cumulative += weight
            if cumulative >= target:
                return item
        return pairs[-1][0]

    def retained(self) -> int:
        """Number of items currently stored across all levels."""
        return sum(len(buf) for buf in self._levels)

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 8 bytes per retained item."""
        return self.retained() * 8

    def __len__(self) -> int:
        return self.retained()
