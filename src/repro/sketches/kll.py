"""KLL quantile sketch (Karnin, Lang & Liberty, 2016).

A hierarchy of compactor buffers: level ``h`` stores items with weight
``2**h``; when a level fills it sorts its buffer and promotes every other
item (random even/odd offset) to level ``h+1``.  Capacities decay
geometrically (ratio 2/3) below the top so the total space is ``O(k)`` while
the rank error is ``eps = O(1/k)`` with high probability.  Mergeable by
concatenating levels and re-compacting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("kll")

_DECAY = 2.0 / 3.0


class KllSketch:
    """Mergeable eps-quantile sketch over items with a total order."""

    def __init__(self, k: int = 200, seed: int = 0):
        if k < 4:
            raise ValueError(f"k must be >= 4, got {k}")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._levels: list = [[]]
        self.count = 0

    @classmethod
    def from_error(cls, eps: float, seed: int = 0) -> "KllSketch":
        """Size for rank error ``eps * n``; in practice ``k ~ 2/eps`` suffices."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        return cls(max(4, math.ceil(2.0 / eps)), seed=seed)

    def _capacity(self, level: int) -> int:
        depth_below_top = len(self._levels) - 1 - level
        return max(2, math.ceil(self.k * _DECAY**depth_below_top))

    def update(self, item) -> None:
        """Insert one item."""
        self.count += 1
        self._levels[0].append(item)
        if _TEL.enabled:
            _UPDATES.inc()
        if len(self._levels[0]) >= self._capacity(0):
            self._compress()

    def update_batch(self, items) -> None:
        """Bulk insert, state- and RNG-identical to the scalar loop.

        Appends in chunks that fill level 0 exactly to its capacity before
        each compaction — the same points at which the scalar path compacts
        — so the compaction (and coin-flip) sequence is unchanged.
        """
        n = len(items)
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)
        position = 0
        while position < n:
            buffer = self._levels[0]
            room = self._capacity(0) - len(buffer)
            if room <= 0:
                self._compress()
                continue
            take = min(room, n - position)
            buffer.extend(items[position : position + take])
            self.count += take
            position += take
            if len(buffer) >= self._capacity(0):
                self._compress()

    def _compress(self) -> None:
        # Runs to a fixpoint: growing the hierarchy shrinks lower-level
        # capacities (the 2/3 decay is anchored at the top), so one pass can
        # leave an earlier level over its new capacity.  Stabilizing here
        # means the *only* compaction trigger is level 0 filling up, which
        # makes chunked batch insertion take the identical compaction (and
        # coin-flip) sequence as the scalar loop.
        compacted = True
        while compacted:
            compacted = False
            level = 0
            while level < len(self._levels):
                buf = self._levels[level]
                if len(buf) < self._capacity(level):
                    level += 1
                    continue
                buf.sort()
                offset = int(self._rng.integers(0, 2))
                promoted = buf[offset::2]
                self._levels[level] = []
                if level + 1 == len(self._levels):
                    self._levels.append([])
                self._levels[level + 1].extend(promoted)
                compacted = True
                level += 1

    def merge(self, other: "KllSketch") -> None:
        """Merge another KLL sketch (same ``k``) into this one."""
        if self.k != other.k:
            raise ValueError(f"cannot merge KLL sketches with k={self.k} and k={other.k}")
        while len(self._levels) < len(other._levels):
            self._levels.append([])
        for level, buf in enumerate(other._levels):
            self._levels[level].extend(buf)
        self.count += other.count
        self._compress()

    def _weighted_items(self) -> list:
        """All retained ``(item, weight)`` pairs, sorted by item."""
        pairs = []
        for level, buf in enumerate(self._levels):
            weight = 1 << level
            pairs.extend((item, weight) for item in buf)
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def rank(self, value) -> float:
        """Estimated number of items ``<= value``."""
        if _TEL.enabled:
            _QUERIES.inc()
        total = 0
        for level, buf in enumerate(self._levels):
            weight = 1 << level
            total += weight * sum(1 for item in buf if item <= value)
        return float(total)

    def cdf(self, value) -> float:
        """Estimated fraction of items ``<= value``."""
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        return self.rank(value) / self.count

    def quantile(self, phi: float):
        """Estimated ``phi``-quantile, ``phi in [0, 1]``."""
        if not 0 <= phi <= 1:
            raise ValueError(f"phi must be in [0, 1], got {phi}")
        if self.count == 0:
            raise ValueError("cannot query an empty sketch")
        if _TEL.enabled:
            _QUERIES.inc()
        pairs = self._weighted_items()
        target = phi * sum(weight for _, weight in pairs)
        cumulative = 0
        for item, weight in pairs:
            cumulative += weight
            if cumulative >= target:
                return item
        return pairs[-1][0]

    def retained(self) -> int:
        """Number of items currently stored across all levels."""
        return sum(len(buf) for buf in self._levels)

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 8 bytes per retained item."""
        return self.retained() * 8

    def __len__(self) -> int:
        return self.retained()
