"""Uniform random-sample summaries.

Two classic constructions:

* :class:`ReservoirSample` — Vitter's Algorithm R: ``k`` slots, the i-th item
  replaces a uniformly random slot with probability ``k / i``.
* :class:`TopKPrioritySample` — assign each item an independent uniform value
  ``u_i`` and keep the ``k`` items with the largest values; this yields a
  uniform without-replacement sample and is the mergeable formulation the
  paper's persistent samplers build on.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("reservoir")
_TOPK_UPDATES, _TOPK_BATCHES, _TOPK_BATCH_ITEMS, _TOPK_QUERIES = sketch_metrics(
    "topk_priority"
)


class ReservoirSample:
    """Vitter's Algorithm R maintaining ``k`` uniform with-replacement slots.

    Each of the ``k`` slots is an independent "replace with probability 1/i"
    chain when ``independent_chains`` is true (giving k independent uniform
    samples, the form analysed in Lemma 3.1); otherwise the classic shared
    reservoir (without replacement) is kept.
    """

    def __init__(self, k: int, seed: int = 0, independent_chains: bool = False):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.independent_chains = independent_chains
        self._rng = np.random.default_rng(seed)
        self._slots: list = [None] * k if independent_chains else []
        self.count = 0

    def update(self, item) -> None:
        """Offer one stream item to the reservoir."""
        if _TEL.enabled:
            _UPDATES.inc()
        self.count += 1
        i = self.count
        if self.independent_chains:
            if i == 1:
                self._slots = [item] * self.k
                return
            # Each chain independently replaces its item with probability 1/i.
            hits = self._rng.random(self.k) < (1.0 / i)
            for slot in np.flatnonzero(hits):
                self._slots[slot] = item
            return
        if len(self._slots) < self.k:
            self._slots.append(item)
            return
        j = int(self._rng.integers(0, i))
        if j < self.k:
            self._slots[j] = item

    def update_batch(self, items) -> None:
        """Bulk offer; RNG-stream- and state-identical to the scalar loop.

        In ``independent_chains`` mode the per-item ``k`` uniforms are drawn
        as one ``(n, k)`` matrix — ``Generator.random`` consumes the PCG64
        stream in the same order as ``n`` sequential ``random(k)`` calls —
        and the rare replacements are applied row by row.  The classic
        reservoir draws a *bounded integer* per item once full, which is
        stateful in ``i``, so it falls back to the scalar loop.
        """
        n = len(items)
        if n == 0:
            return
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)
        if not self.independent_chains:
            for i in range(n):
                self.update(items[i])
            return
        start = 0
        if self.count == 0:
            self._slots = [items[0]] * self.k
            self.count = 1
            start = 1
        remaining = n - start
        if remaining <= 0:
            return
        draws = self._rng.random((remaining, self.k))
        thresholds = 1.0 / np.arange(self.count + 1, self.count + remaining + 1)
        rows, chains = np.nonzero(draws < thresholds[:, None])
        for row, chain in zip(rows.tolist(), chains.tolist()):
            self._slots[chain] = items[start + row]
        self.count += remaining

    def sample(self) -> list:
        """The current sample (length ``min(k, count)``)."""
        if _TEL.enabled:
            _QUERIES.inc()
        if self.independent_chains:
            return [item for item in self._slots if item is not None]
        return list(self._slots)

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 4-byte id per kept slot."""
        return len(self.sample()) * 4

    def __len__(self) -> int:
        return len(self.sample())


class TopKPrioritySample:
    """Uniform without-replacement sample: top-``k`` items by random value.

    Items are kept in a min-heap on their random priority; a new item is
    compared against the current k-th largest value before touching the heap,
    so updates are O(1) amortised and O(log k) worst case.  Mergeable: union
    the (priority, item) pairs and re-take the top ``k``.
    """

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._heap: list = []  # (priority, tiebreak, item) min-heap
        self._tiebreak = itertools.count()
        self.count = 0

    def update(self, item) -> None:
        """Offer one stream item."""
        if _TEL.enabled:
            _TOPK_UPDATES.inc()
        self.count += 1
        priority = float(self._rng.random())
        self.offer(item, priority)

    def update_batch(self, items) -> None:
        """Bulk offer; RNG-stream- and state-identical to the scalar loop.

        All ``n`` priorities come from a single ``Generator.random(n)`` call
        (same PCG64 consumption as ``n`` scalar draws); the heap then sees
        the same (priority, tiebreak, item) sequence as sequential updates.
        """
        n = len(items)
        if n == 0:
            return
        if _TEL.enabled:
            _TOPK_BATCHES.inc()
            _TOPK_BATCH_ITEMS.inc(n)
        priorities = self._rng.random(n)
        offer = self.offer
        for i in range(n):
            offer(items[i], float(priorities[i]))
        self.count += n

    def offer(self, item, priority: float) -> None:
        """Offer an item with an externally supplied priority."""
        heap = self._heap
        if len(heap) < self.k:
            heapq.heappush(heap, (priority, next(self._tiebreak), item))
        elif priority > heap[0][0]:
            heapq.heapreplace(heap, (priority, next(self._tiebreak), item))

    def sample(self) -> list:
        """The current sample (unordered, length ``min(k, count)``)."""
        if _TEL.enabled:
            _TOPK_QUERIES.inc()
        return [item for _, _, item in self._heap]

    def threshold(self) -> float:
        """Smallest priority currently kept (0.0 when underfull)."""
        if len(self._heap) < self.k:
            return 0.0
        return self._heap[0][0]

    def merge(self, other: "TopKPrioritySample") -> None:
        """Union with another sample of the same ``k``."""
        if self.k != other.k:
            raise ValueError(f"cannot merge samples with k={self.k} and k={other.k}")
        for entry in other._heap:
            heap = self._heap
            if len(heap) < self.k:
                heapq.heappush(heap, entry)
            elif entry[0] > heap[0][0]:
                heapq.heapreplace(heap, entry)
        self.count += other.count

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 8-byte priority + 4-byte id per entry."""
        return len(self._heap) * 12

    def __len__(self) -> int:
        return len(self._heap)
