"""HyperLogLog distinct-count sketch (Flajolet et al., 2007).

``2**p`` single-byte registers; each key is hashed, the low ``p`` bits pick a
register and the register keeps the maximum leading-zero count of the rest.
Standard error is ``~1.04 / sqrt(2**p)``.  Mergeable (register-wise max), so
it slots straight into the merge-tree persistence of Section 5 — giving the
"distinct elements" row the paper lists among further-sketch candidates
(Section 2.2.5).
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.hashing import bit_length_u64, mix64, mix64_array
from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("hyperloglog")


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """Mergeable approximate distinct counter over integer keys."""

    def __init__(self, p: int = 12, seed: int = 0):
        if not 4 <= p <= 18:
            raise ValueError(f"p must be in [4, 18], got {p}")
        self.p = p
        self.m = 1 << p
        self.seed = seed
        # mix64 gives full avalanche; the rank bits need it (see hashing.py).
        self._salt = mix64(seed, 0x9E3779B97F4A7C15)
        self._registers = np.zeros(self.m, dtype=np.uint8)
        self.count = 0

    @classmethod
    def from_error(cls, eps: float, seed: int = 0) -> "HyperLogLog":
        """Size for relative standard error ``eps``."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        p = max(4, min(18, math.ceil(2 * math.log2(1.04 / eps))))
        return cls(p, seed=seed)

    def update(self, key: int) -> None:
        """Observe one key (duplicates are free)."""
        hashed = mix64(int(key), self._salt)
        register = hashed & (self.m - 1)
        rest = hashed >> self.p
        rank = (64 - self.p) - rest.bit_length() + 1
        if rank > self._registers[register]:
            self._registers[register] = rank
        self.count += 1
        if _TEL.enabled:
            _UPDATES.inc()

    def update_batch(self, keys) -> None:
        """Vectorised bulk observe; register-identical to the scalar loop.

        Hashes the whole batch with :func:`mix64_array`, computes exact
        leading-zero ranks via :func:`bit_length_u64` (float log2 would be
        wrong above 2**53), and folds them in with an unbuffered
        ``np.maximum.at`` so duplicate registers within the batch resolve
        exactly like sequential updates.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = int(keys.size)
        if n == 0:
            return
        hashed = mix64_array(keys, self._salt)
        registers = (hashed & np.uint64(self.m - 1)).astype(np.int64)
        rest = hashed >> np.uint64(self.p)
        ranks = ((64 - self.p) - bit_length_u64(rest) + 1).astype(np.uint8)
        np.maximum.at(self._registers, registers, ranks)
        self.count += n
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)

    def estimate(self) -> float:
        """Approximate number of distinct keys observed."""
        if _TEL.enabled:
            _QUERIES.inc()
        registers = self._registers.astype(float)
        raw = _alpha(self.m) * self.m**2 / np.sum(2.0**-registers)
        zeros = int(np.count_nonzero(self._registers == 0))
        if raw <= 2.5 * self.m and zeros > 0:
            return self.m * math.log(self.m / zeros)  # small-range correction
        return float(raw)

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise max with a sketch of identical shape and seed."""
        if (self.p, self.seed) != (other.p, other.seed):
            raise ValueError("HyperLogLog sketches differ in shape or seed")
        np.maximum(self._registers, other._registers, out=self._registers)
        self.count += other.count

    def memory_bytes(self) -> int:
        """One byte per register."""
        return self.m

    def __len__(self) -> int:
        return self.m
