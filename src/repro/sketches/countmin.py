"""CountMin sketch (Cormode & Muthukrishnan, 2005).

A linear sketch for frequency estimation: ``depth`` rows of ``width``
counters, each row indexed by an independent 2-universal hash.  The point
estimate is the minimum over rows, which overestimates the true count by at
most ``eps * W`` (total weight) with probability ``1 - delta`` when
``width = ceil(e / eps)`` and ``depth = ceil(ln(1 / delta))``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.hashing import HashFamily, next_pow2_bits
from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("countmin")


class CountMinSketch:
    """CountMin frequency sketch over integer keys.

    Parameters
    ----------
    width:
        Number of counters per row (rounded up to a power of two).
    depth:
        Number of rows.
    seed:
        Hash seed; sketches with equal shape and seed are merge-compatible.
    conservative:
        If true, use conservative update (only raise counters that equal the
        current estimate), which reduces overestimation for skewed streams
        but loses linearity (no deletions or merges of deltas).
    """

    def __init__(self, width: int, depth: int = 3, seed: int = 0,
                 conservative: bool = False):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self._bits = next_pow2_bits(width)
        self.width = 1 << self._bits
        self.depth = depth
        self.seed = seed
        self.conservative = conservative
        family = HashFamily(seed)
        self._hashes = [family.draw_multiply_shift(self._bits) for _ in range(depth)]
        self._table = np.zeros((depth, self.width), dtype=np.int64)
        self.total_weight = 0

    @classmethod
    def from_error(cls, eps: float, delta: float = 0.01, seed: int = 0) -> "CountMinSketch":
        """Size the sketch for additive error ``eps*W`` w.p. ``1 - delta``."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        width = math.ceil(math.e / eps)
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width, depth, seed=seed)

    def _buckets(self, key: int) -> list:
        return [h(key) for h in self._hashes]

    def update(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` to ``key``'s count (negative allowed unless conservative)."""
        if self.conservative:
            if weight < 0:
                raise ValueError("conservative CountMin is insertion-only")
            buckets = self._buckets(key)
            current = min(self._table[r, b] for r, b in enumerate(buckets))
            floor = current + weight
            for r, b in enumerate(buckets):
                if self._table[r, b] < floor:
                    self._table[r, b] = floor
        else:
            for r, b in enumerate(self._buckets(key)):
                self._table[r, b] += weight
        self.total_weight += weight
        if _TEL.enabled:
            _UPDATES.inc()

    def update_batch(self, keys, weights=None) -> None:
        """Vectorised bulk :meth:`update`; counter-exact vs the scalar loop.

        Each row scatter-adds all buckets at once (``np.add.at`` handles
        duplicate keys within the batch).  Integer weights only — the table
        is int64, like the scalar path.  Conservative sketches fall back to
        the scalar loop: their update rule depends on the running estimate,
        which is inherently order-dependent.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = int(keys.size)
        if n == 0:
            return
        weight_array = None if weights is None else np.asarray(weights, dtype=np.int64)
        if weight_array is not None and weight_array.size != n:
            raise ValueError(
                f"keys and weights length mismatch: {n} vs {weight_array.size}"
            )
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)
        if self.conservative:
            for i in range(n):
                self.update(int(keys[i]), 1 if weight_array is None else int(weight_array[i]))
            return
        for h, row in zip(self._hashes, self._table):
            buckets = h(keys)
            if weight_array is None:
                np.add.at(row, buckets, 1)
            else:
                np.add.at(row, buckets, weight_array)
        self.total_weight += n if weight_array is None else int(weight_array.sum())

    def query(self, key: int) -> int:
        """Point estimate of ``key``'s total weight (never underestimates)."""
        if _TEL.enabled:
            _QUERIES.inc()
        return int(min(self._table[r, b] for r, b in enumerate(self._buckets(key))))

    def merge(self, other: "CountMinSketch") -> None:
        """Add another sketch's counters into this one (linear merge)."""
        self._check_compatible(other)
        self._table += other._table
        self.total_weight += other.total_weight

    def _check_compatible(self, other: "CountMinSketch") -> None:
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError("CountMin sketches differ in shape or seed; cannot merge")
        if self.conservative or other.conservative:
            raise ValueError("conservative CountMin sketches are not mergeable")

    def counters(self) -> np.ndarray:
        """The raw counter table (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 8 bytes per counter."""
        return self._table.size * 8

    def __len__(self) -> int:
        return self._table.size
