"""Misra-Gries frequent-items summary (Misra & Gries, 1982).

Maintains at most ``k`` (key, counter) pairs.  For a stream of total weight
``W`` the estimate ``f_hat(x)`` satisfies ``f(x) - W/(k+1) <= f_hat(x) <= f(x)``
— i.e. an eps-FE summary with ``k = ceil(1/eps) - 1`` counters, never
overestimating.  Mergeable (Agarwal et al., 2013): add counters pointwise,
then subtract the (k+1)-th largest counter from all and drop non-positive.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("misra_gries")


class MisraGries:
    """Deterministic eps-FE summary using at most ``k`` counters."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._counters: dict = {}
        self.total_weight = 0
        # Total amount decremented from every surviving counter; the true
        # count of x is within [counter[x], counter[x] + decrement_bound].
        self.decrement_bound = 0

    @classmethod
    def from_error(cls, eps: float) -> "MisraGries":
        """Size for additive error ``eps * W``: ``k = ceil(1/eps) - 1``."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        return cls(max(1, math.ceil(1.0 / eps) - 1))

    def update(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` (must be positive) occurrences of ``key``."""
        if weight <= 0:
            raise ValueError("Misra-Gries is insertion-only; weight must be > 0")
        if _TEL.enabled:
            _UPDATES.inc()
        counters = self._counters
        self.total_weight += weight
        if key in counters:
            counters[key] += weight
            return
        if len(counters) < self.k:
            counters[key] = weight
            return
        # Decrement all counters by the largest amount that keeps them
        # non-negative while consuming the incoming weight.
        dec = min(weight, min(counters.values()))
        remaining = weight - dec
        self.decrement_bound += dec
        dead = []
        for other, count in counters.items():
            count -= dec
            if count <= 0:
                dead.append(other)
            else:
                counters[other] = count
        for other in dead:
            del counters[other]
        if remaining > 0:
            # The incoming key survived the decrement round; re-process the
            # remainder now that a slot is guaranteed to be free.
            self.update(key, remaining)
            self.total_weight -= remaining

    def update_batch(self, keys, weights=None) -> None:
        """Bulk insert with sorted-unique pre-aggregation.

        Duplicate keys in the batch are summed first, then applied in
        ascending key order — one counter operation per *distinct* key, which
        is the dominant win on the skewed streams this summary targets.  The
        result satisfies the same ``W/(k+1)`` error guarantee (each
        aggregated insertion is a legal weighted update) but is not
        necessarily state-identical to the scalar loop: Misra-Gries is
        order-dependent.  See docs/BATCHING.md.  All weights are validated
        up front, so an invalid weight rejects the whole batch atomically.
        """
        keys = np.asarray(keys)
        n = int(keys.size)
        if n == 0:
            return
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)
        if weights is None:
            unique, aggregated = np.unique(keys, return_counts=True)
        else:
            weight_array = np.asarray(weights, dtype=np.int64)
            if weight_array.size != n:
                raise ValueError(
                    f"keys and weights length mismatch: {n} vs {weight_array.size}"
                )
            if not np.all(weight_array > 0):
                raise ValueError("Misra-Gries is insertion-only; weight must be > 0")
            unique, inverse = np.unique(keys, return_inverse=True)
            aggregated = np.zeros(unique.size, dtype=np.int64)
            np.add.at(aggregated, inverse, weight_array)
        for key, weight in zip(unique.tolist(), aggregated.tolist()):
            self.update(key, int(weight))

    def query(self, key: int) -> int:
        """Lower-bound estimate of ``key``'s count (never overestimates)."""
        if _TEL.enabled:
            _QUERIES.inc()
        return self._counters.get(key, 0)

    def heavy_hitters(self, threshold: float) -> list:
        """Keys whose *estimated* count is at least ``threshold * W``.

        Contains every key with true frequency ``>= (threshold + eps) * W``
        and no key below ``(threshold - eps) * W`` where ``eps = 1/(k+1)``.
        """
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        cut = threshold * self.total_weight
        return sorted(key for key, count in self._counters.items() if count >= cut)

    def merge(self, other: "MisraGries") -> None:
        """Merge another summary into this one, keeping at most ``k`` counters."""
        if self.k != other.k:
            raise ValueError(f"cannot merge MG summaries with k={self.k} and k={other.k}")
        counters = self._counters
        for key, count in other._counters.items():
            counters[key] = counters.get(key, 0) + count
        self.total_weight += other.total_weight
        self.decrement_bound += other.decrement_bound
        if len(counters) > self.k:
            # Subtract the (k+1)-th largest counter value from everything.
            cutoff = heapq.nlargest(self.k + 1, counters.values())[-1]
            self.decrement_bound += cutoff
            self._counters = {
                key: count - cutoff for key, count in counters.items() if count > cutoff
            }

    def items(self) -> dict:
        """Copy of the (key, counter) map."""
        return dict(self._counters)

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 4-byte key + 8-byte counter per entry."""
        return len(self._counters) * 12

    def __len__(self) -> int:
        return len(self._counters)
