"""Dyadic CountMin hierarchy for range sums and heavy-hitter enumeration.

Maintains one CountMin sketch per dyadic level of the key universe
``[0, 2**universe_bits)``: at level ``j`` keys are collapsed by dropping the
``j`` low bits.  Range sums decompose into at most ``2 * universe_bits``
dyadic nodes; heavy hitters are enumerated by descending from the root and
expanding only the nodes whose estimated count passes the threshold.

This is the classic retrieval structure the paper's PCM_HH baseline needs
("a dyadic range sum technique is required to efficiently query heavy
hitters"); it is also useful on its own.
"""

from __future__ import annotations

import numpy as np

from repro.sketches.countmin import CountMinSketch
from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

# The per-level CountMin sketches tick their own counters too; the dyadic
# quartet counts operations against the hierarchy as a whole.
_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("dyadic")


class DyadicCountMin:
    """A stack of CountMin sketches over dyadic aggregations of the keys."""

    def __init__(self, universe_bits: int, width: int, depth: int = 3, seed: int = 0):
        if universe_bits < 1:
            raise ValueError(f"universe_bits must be >= 1, got {universe_bits}")
        self.universe_bits = universe_bits
        self.levels = [
            CountMinSketch(width, depth, seed=seed + level)
            for level in range(universe_bits + 1)
        ]
        self.total_weight = 0

    def update(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` to ``key`` at every dyadic level."""
        if not 0 <= key < (1 << self.universe_bits):
            raise ValueError(f"key {key} outside universe [0, 2**{self.universe_bits})")
        for level, sketch in enumerate(self.levels):
            sketch.update(key >> level, weight)
        self.total_weight += weight
        if _TEL.enabled:
            _UPDATES.inc()

    def update_batch(self, keys, weights=None) -> None:
        """Vectorised bulk :meth:`update`: one shifted batch per dyadic level.

        Counter-exact vs the scalar loop (each level is a linear CountMin).
        Out-of-universe keys reject the whole batch before anything is
        applied.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = int(keys.size)
        if n == 0:
            return
        if np.any((keys < 0) | (keys >= (1 << self.universe_bits))):
            bad = keys[(keys < 0) | (keys >= (1 << self.universe_bits))][0]
            raise ValueError(
                f"key {int(bad)} outside universe [0, 2**{self.universe_bits})"
            )
        weight_array = None if weights is None else np.asarray(weights, dtype=np.int64)
        for level, sketch in enumerate(self.levels):
            sketch.update_batch(keys >> level, weight_array)
        self.total_weight += n if weight_array is None else int(weight_array.sum())
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)

    def merge(self, other: "DyadicCountMin") -> None:
        """Merge another hierarchy into this one, level by level.

        Each level is a linear CountMin, so merging adds the tables cell-wise
        and the result is counter-identical to having ingested both streams
        into one hierarchy.  Requires an equal ``universe_bits``; per-level
        width/depth/seed compatibility is enforced by
        :meth:`CountMinSketch.merge`.
        """
        if self.universe_bits != other.universe_bits:
            raise ValueError(
                "cannot merge DyadicCountMin hierarchies over different universes: "
                f"2**{self.universe_bits} vs 2**{other.universe_bits}"
            )
        for mine, theirs in zip(self.levels, other.levels):
            mine.merge(theirs)
        self.total_weight += other.total_weight

    def query(self, key: int) -> int:
        """Point estimate of ``key``'s total weight."""
        if _TEL.enabled:
            _QUERIES.inc()
        return self.levels[0].query(key)

    def range_sum(self, lo: int, hi: int) -> int:
        """Estimated total weight of keys in ``[lo, hi]`` (inclusive)."""
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        total = 0
        level = 0
        # Standard dyadic decomposition: peel aligned blocks from both ends.
        while lo <= hi:
            if lo % 2 == 1:
                total += self.levels[level].query(lo)
                lo += 1
            if hi % 2 == 0:
                total += self.levels[level].query(hi)
                hi -= 1
            if lo > hi:
                break
            lo //= 2
            hi //= 2
            level += 1
        return total

    def heavy_hitters(self, threshold: float) -> list:
        """Keys with estimated count >= ``threshold * total_weight``.

        Descends the dyadic tree, expanding only qualifying nodes, so the
        cost is proportional to the output size times ``universe_bits``.
        """
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        cut = threshold * self.total_weight
        if self.total_weight == 0:
            return []
        hitters = []
        frontier = [(self.universe_bits, 0)]
        while frontier:
            level, node = frontier.pop()
            if self.levels[level].query(node) < cut:
                continue
            if level == 0:
                hitters.append(node)
            else:
                frontier.append((level - 1, node * 2))
                frontier.append((level - 1, node * 2 + 1))
        return sorted(hitters)

    def memory_bytes(self) -> int:
        """Sum of the per-level CountMin sizes."""
        return sum(sketch.memory_bytes() for sketch in self.levels)
