"""Seeded hash families shared by the linear sketches.

The linear sketches (CountMin, Count sketch, dyadic structures) need
families of pairwise-independent hash functions that are cheap, seeded and
reproducible.  We implement the classic multiply-shift scheme of Dietzfelbinger
et al. over 64-bit arithmetic, plus a sign hash for the Count sketch.

All functions accept either a single integer key or a numpy array of keys and
vectorize accordingly; streams in this package use non-negative integer ids.
"""

from __future__ import annotations

import numpy as np

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_WORD_BITS = 64


class HashFamily:
    """A reproducible source of independent hash functions.

    Parameters
    ----------
    seed:
        Seed for the underlying PRNG.  Two families built with the same seed
        produce identical hash functions in the same order, which the
        persistent sketches rely on when reconstructing historical state.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def draw_multiply_shift(self, out_bits: int) -> "MultiplyShiftHash":
        """Draw a multiply-shift hash mapping keys to ``[0, 2**out_bits)``."""
        # Multiplier must be odd for the scheme's guarantees.
        mult = int(self._rng.integers(0, 2**63, dtype=np.uint64)) * 2 + 1
        add = int(self._rng.integers(0, 2**63, dtype=np.uint64))
        return MultiplyShiftHash(mult, add, out_bits)

    def draw_sign(self) -> "SignHash":
        """Draw a hash mapping keys to ``{-1, +1}``."""
        mult = int(self._rng.integers(0, 2**63, dtype=np.uint64)) * 2 + 1
        add = int(self._rng.integers(0, 2**63, dtype=np.uint64))
        return SignHash(mult, add)


class MultiplyShiftHash:
    """``h(x) = ((a*x + b) mod 2^64) >> (64 - out_bits)``.

    This family is 2-universal for odd ``a``; we use it for bucket selection
    in CountMin / Count sketch rows.
    """

    __slots__ = ("_a", "_b", "out_bits", "_shift")

    def __init__(self, a: int, b: int, out_bits: int):
        if not 1 <= out_bits <= _WORD_BITS:
            raise ValueError(f"out_bits must be in [1, 64], got {out_bits}")
        if a % 2 == 0:
            raise ValueError("multiplier must be odd")
        self._a = np.uint64(a)
        self._b = np.uint64(b)
        self.out_bits = out_bits
        self._shift = np.uint64(_WORD_BITS - out_bits)

    @property
    def range_size(self) -> int:
        """Number of distinct output buckets."""
        return 1 << self.out_bits

    def __call__(self, key):
        key = np.asarray(key, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = (self._a * key + self._b) & _MASK64
        out = mixed >> self._shift
        if out.ndim == 0:
            return int(out)
        return out.astype(np.int64)


class SignHash:
    """``s(x) in {-1, +1}`` from the top bit of a multiply-shift mix."""

    __slots__ = ("_a", "_b")

    def __init__(self, a: int, b: int):
        if a % 2 == 0:
            raise ValueError("multiplier must be odd")
        self._a = np.uint64(a)
        self._b = np.uint64(b)

    def __call__(self, key):
        key = np.asarray(key, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = (self._a * key + self._b) & _MASK64
        bit = (mixed >> np.uint64(63)).astype(np.int64)
        out = 2 * bit - 1
        if out.ndim == 0:
            return int(out)
        return out


def mix64(key: int, seed: int = 0) -> int:
    """Strong 64-bit finalizer (murmur3 fmix64 over ``key ^ seed``).

    Multiply-shift is 2-universal but leaves visible structure on sequential
    integer keys (its per-residue high bits form tight arithmetic
    progressions).  Sketches that consume *bit patterns* of the hash — the
    leading-zero ranks of HyperLogLog, the order statistics of KMV — need
    the avalanche behaviour this finalizer provides.
    """
    x = (key ^ seed) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    return x


def mix64_array(keys, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`mix64`: one uint64 fmix64 output per key.

    Produces exactly the same values as calling ``mix64(key, seed)`` on each
    element — the vectorized batch paths (HyperLogLog, KMV) depend on that
    for batch ≡ scalar-loop equivalence.
    """
    x = np.asarray(keys, dtype=np.uint64) ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        x = x ^ (x >> np.uint64(33))
        x = x * np.uint64(0xFF51AFD7ED558CCD)
        x = x ^ (x >> np.uint64(33))
        x = x * np.uint64(0xC4CEB9FE1A85EC53)
        x = x ^ (x >> np.uint64(33))
    return x


def bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Exact ``int.bit_length()`` of each uint64 element, as int64.

    A float ``log2`` would be wrong above 2**53 (double mantissa); this is a
    6-step binary search on shifts, exact over the full 64-bit range.
    """
    values = np.asarray(values, dtype=np.uint64)
    length = np.zeros(values.shape, dtype=np.int64)
    remaining = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        mask = remaining >= (np.uint64(1) << np.uint64(shift))
        length[mask] += shift
        remaining[mask] >>= np.uint64(shift)
    length[remaining > 0] += 1
    return length


def next_pow2_bits(width: int) -> int:
    """Smallest ``b`` with ``2**b >= width`` (at least 1)."""
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    return max(1, int(width - 1).bit_length())
