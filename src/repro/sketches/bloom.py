"""Bloom filter (Bloom, 1970).

Standard ``m``-bit filter with ``h`` hash functions.  Included as a substrate
for the membership-style example (the paper cites persistent Bloom filters as
the closest specialised prior work) and to exercise the checkpoint-chaining
framework on a non-counter sketch in tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.hashing import HashFamily, next_pow2_bits
from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("bloom")


class BloomFilter:
    """Approximate-membership filter with no false negatives."""

    def __init__(self, bits: int, num_hashes: int = 4, seed: int = 0):
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self._bit_width = next_pow2_bits(bits)
        self.bits = 1 << self._bit_width
        self.num_hashes = num_hashes
        self.seed = seed
        family = HashFamily(seed)
        self._hashes = [family.draw_multiply_shift(self._bit_width) for _ in range(num_hashes)]
        self._array = np.zeros(self.bits, dtype=bool)
        self.count = 0

    @classmethod
    def from_capacity(cls, capacity: int, fp_rate: float = 0.01, seed: int = 0) -> "BloomFilter":
        """Size for ``capacity`` insertions at the target false-positive rate."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0 < fp_rate < 1:
            raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
        bits = math.ceil(-capacity * math.log(fp_rate) / math.log(2) ** 2)
        num_hashes = max(1, round(bits / capacity * math.log(2)))
        return cls(bits, num_hashes, seed=seed)

    def update(self, key: int) -> None:
        """Insert a key."""
        for h in self._hashes:
            self._array[h(key)] = True
        self.count += 1
        if _TEL.enabled:
            _UPDATES.inc()

    def update_batch(self, keys) -> None:
        """Vectorised bulk insert; bit-identical to the scalar loop."""
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        for h in self._hashes:
            self._array[h(keys)] = True
        self.count += int(keys.size)
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(int(keys.size))

    def query(self, key: int) -> bool:
        """True if the key *may* have been inserted; False is definitive."""
        if _TEL.enabled:
            _QUERIES.inc()
        return all(self._array[h(key)] for h in self._hashes)

    def merge(self, other: "BloomFilter") -> None:
        """Union with a filter of identical shape and seed."""
        if (self.bits, self.num_hashes, self.seed) != (other.bits, other.num_hashes, other.seed):
            raise ValueError("Bloom filters differ in shape or seed; cannot merge")
        self._array |= other._array
        self.count += other.count

    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return float(self._array.mean())

    def memory_bytes(self) -> int:
        """Modelled C-layout size: the bit array, in bytes."""
        return self.bits // 8

    def __len__(self) -> int:
        return self.count
