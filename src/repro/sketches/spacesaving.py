"""SpaceSaving sketch (Metwally, Agrawal & El Abbadi, 2006).

Keeps ``k`` (key, count, error) entries.  On overflow the minimum-count entry
is evicted and the newcomer inherits its count as an overestimate bound.
Isomorphic to Misra-Gries (Agarwal et al., 2013) but *overestimates*:
``f(x) <= f_hat(x) <= f(x) + W/k``.  Included as a substrate baseline and for
cross-validation of the Misra-Gries implementation in tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("spacesaving")


class SpaceSaving:
    """Deterministic eps-FE summary with exactly-at-most ``k`` counters."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._counts: dict = {}
        self._errors: dict = {}
        self.total_weight = 0

    @classmethod
    def from_error(cls, eps: float) -> "SpaceSaving":
        """Size for additive error ``eps * W``: ``k = ceil(1/eps)``."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        return cls(max(1, math.ceil(1.0 / eps)))

    def update(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` (must be positive) occurrences of ``key``."""
        if weight <= 0:
            raise ValueError("SpaceSaving is insertion-only; weight must be > 0")
        if _TEL.enabled:
            _UPDATES.inc()
        self.total_weight += weight
        counts = self._counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.k:
            counts[key] = weight
            self._errors[key] = 0
            return
        victim = min(counts, key=counts.get)
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[key] = floor + weight
        self._errors[key] = floor

    def update_batch(self, keys, weights=None) -> None:
        """Bulk insert with sorted-unique pre-aggregation.

        Duplicate keys are summed first and applied in ascending key order —
        one eviction decision per distinct key.  Preserves the ``W/k``
        overestimate guarantee but, like the scalar sketch, is
        order-dependent, so the batch is not necessarily state-identical to
        the scalar loop (see docs/BATCHING.md).  All weights are validated
        up front, so an invalid weight rejects the whole batch atomically.
        """
        keys = np.asarray(keys)
        n = int(keys.size)
        if n == 0:
            return
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)
        if weights is None:
            unique, aggregated = np.unique(keys, return_counts=True)
        else:
            weight_array = np.asarray(weights, dtype=np.int64)
            if weight_array.size != n:
                raise ValueError(
                    f"keys and weights length mismatch: {n} vs {weight_array.size}"
                )
            if not np.all(weight_array > 0):
                raise ValueError("SpaceSaving is insertion-only; weight must be > 0")
            unique, inverse = np.unique(keys, return_inverse=True)
            aggregated = np.zeros(unique.size, dtype=np.int64)
            np.add.at(aggregated, inverse, weight_array)
        for key, weight in zip(unique.tolist(), aggregated.tolist()):
            self.update(key, int(weight))

    def query(self, key: int) -> int:
        """Upper-bound estimate of ``key``'s count (never underestimates)."""
        if _TEL.enabled:
            _QUERIES.inc()
        return self._counts.get(key, 0)

    def merge(self, other: "SpaceSaving") -> None:
        """Merge another summary into this one, keeping at most ``k`` entries.

        Guarantee-preserving (the SpaceSaving analogue of the Misra-Gries
        merge in Agarwal et al., 2013, via the MG isomorphism): a key absent
        from one summary may still have occurred up to that summary's
        minimum counter ``m`` times, so the merged entry credits ``m`` to
        both its count and its error term — the overestimate invariant
        ``f(x) <= f_hat(x)`` survives, and so does the lower bound
        ``f_hat(x) - err(x) <= f(x)``.  Only the ``k`` largest merged
        counts are retained; the additive error of any surviving key is at
        most ``W1/k + W2/k = W/k``, i.e. the single-summary bound over the
        combined stream.
        """
        if self.k != other.k:
            raise ValueError(
                f"cannot merge SpaceSaving summaries with k={self.k} and k={other.k}"
            )
        floor_self = min(self._counts.values()) if len(self._counts) >= self.k else 0
        floor_other = min(other._counts.values()) if len(other._counts) >= other.k else 0
        merged_counts: dict = {}
        merged_errors: dict = {}
        for key in set(self._counts) | set(other._counts):
            count = error = 0
            if key in self._counts:
                count += self._counts[key]
                error += self._errors[key]
            else:
                count += floor_self
                error += floor_self
            if key in other._counts:
                count += other._counts[key]
                error += other._errors[key]
            else:
                count += floor_other
                error += floor_other
            merged_counts[key] = count
            merged_errors[key] = error
        survivors = sorted(
            merged_counts, key=lambda key: (-merged_counts[key], key)
        )[: self.k]
        self._counts = {key: merged_counts[key] for key in survivors}
        self._errors = {key: merged_errors[key] for key in survivors}
        self.total_weight += other.total_weight

    def guaranteed_count(self, key: int) -> int:
        """Lower bound on ``key``'s true count: estimate minus its error term."""
        if key not in self._counts:
            return 0
        return self._counts[key] - self._errors[key]

    def heavy_hitters(self, threshold: float) -> list:
        """Keys whose estimated count is at least ``threshold * W`` (no false negatives)."""
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        cut = threshold * self.total_weight
        return sorted(key for key, count in self._counts.items() if count >= cut)

    def items(self) -> dict:
        """Copy of the (key, count) map."""
        return dict(self._counts)

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 4-byte key + two 8-byte fields per entry."""
        return len(self._counts) * 20

    def __len__(self) -> int:
        return len(self._counts)
