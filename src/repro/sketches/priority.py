"""Priority sampling (Duffield, Lund & Thorup, 2007).

Weighted without-replacement sampling: item ``a_i`` with weight ``w_i`` gets
priority ``q_i = w_i / u_i`` for an independent uniform ``u_i in (0, 1]``, and
the ``k`` items with the largest priorities are kept.  Each kept item is
re-weighted to ``max(w_i, tau)`` where ``tau`` is the (k+1)-th largest
priority, which makes subset-sum estimates unbiased (near-variance-optimal).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("priority")


class PrioritySample:
    """Weighted without-replacement sample of ``k`` items by priority."""

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._heap: list = []  # (priority, tiebreak, item, weight) min-heap
        self._tiebreak = itertools.count()
        # (k+1)-th largest priority seen so far: the reweighting threshold.
        self._tau = 0.0
        self.count = 0
        self.total_weight = 0.0

    def update(self, item, weight: float) -> None:
        """Offer one item with positive weight."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if _TEL.enabled:
            _UPDATES.inc()
        u = float(self._rng.random())
        while u == 0.0:
            u = float(self._rng.random())
        self.offer(item, weight, weight / u)

    def update_batch(self, items, weights) -> None:
        """Bulk offer; RNG-stream- and state-identical to the scalar loop.

        Draws all ``n`` uniforms in one ``Generator.random(n)`` call (same
        PCG64 consumption as ``n`` sequential draws).  A zero draw is
        redrawn scalar-wise, exactly like :meth:`update` — the one
        astronomically rare event where batch RNG consumption can diverge
        from the scalar loop (see docs/BATCHING.md).  A non-positive weight
        raises after the prefix before it has been applied, matching the
        scalar loop; the whole batch's uniforms are consumed either way.
        """
        n = len(items)
        if len(weights) != n:
            raise ValueError(
                f"items and weights length mismatch: {n} vs {len(weights)}"
            )
        if n == 0:
            return
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)
        weight_array = np.asarray(weights, dtype=float)
        uniforms = self._rng.random(n)
        offer = self.offer
        for i in range(n):
            weight = float(weight_array[i])
            if weight <= 0:
                raise ValueError(f"weight must be positive, got {weight}")
            u = float(uniforms[i])
            while u == 0.0:
                u = float(self._rng.random())
            offer(items[i], weight, weight / u)

    def offer(self, item, weight: float, priority: float) -> None:
        """Offer an item with an externally supplied priority."""
        self.count += 1
        self.total_weight += weight
        heap = self._heap
        if len(heap) < self.k:
            heapq.heappush(heap, (priority, next(self._tiebreak), item, weight))
        elif priority > heap[0][0]:
            evicted = heapq.heapreplace(heap, (priority, next(self._tiebreak), item, weight))
            self._tau = max(self._tau, evicted[0])
        else:
            self._tau = max(self._tau, priority)

    def sample(self) -> list:
        """``(item, adjusted_weight)`` pairs; adjusted weights sum ~ total weight."""
        if _TEL.enabled:
            _QUERIES.inc()
        tau = self._tau
        return [(item, max(weight, tau)) for _, _, item, weight in self._heap]

    def raw_sample(self) -> list:
        """``(item, original_weight)`` pairs without reweighting."""
        return [(item, weight) for _, _, item, weight in self._heap]

    def threshold(self) -> float:
        """Current reweighting threshold tau ((k+1)-th largest priority)."""
        return self._tau

    def estimate_subset_sum(self, predicate) -> float:
        """Unbiased estimate of the total weight of items matching ``predicate``."""
        return sum(weight for item, weight in self.sample() if predicate(item))

    def memory_bytes(self) -> int:
        """Modelled C-layout size: two 8-byte floats + 4-byte id per entry."""
        return len(self._heap) * 20

    def __len__(self) -> int:
        return len(self._heap)
