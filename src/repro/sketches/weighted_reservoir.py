"""Weighted with-replacement reservoir sampling (Section 3.1 of the paper).

Runs ``k`` independent single-item chains.  Chain ``j`` holds one item; on
seeing ``a_i`` with weight ``w_i`` it replaces its item with probability
``w_i / W_i`` where ``W_i`` is the running total weight.  After the stream,
chain ``j``'s item is distributed as one weighted with-replacement draw, so
the ``k`` chains together form a with-replacement sample of size ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL, sketch_metrics

_UPDATES, _BATCHES, _BATCH_ITEMS, _QUERIES = sketch_metrics("weighted_reservoir")


class WeightedReservoirWR:
    """``k`` independent weighted with-replacement sampling chains."""

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._slots: list = [None] * k
        self.count = 0
        self.total_weight = 0.0

    def update(self, item, weight: float) -> None:
        """Offer one item with positive weight to every chain."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if _TEL.enabled:
            _UPDATES.inc()
        self.count += 1
        self.total_weight += weight
        p = weight / self.total_weight
        if p >= 1.0:
            self._slots = [item] * self.k
            return
        hits = self._rng.random(self.k) < p
        for slot in np.flatnonzero(hits):
            self._slots[slot] = item

    def update_batch(self, items, weights) -> None:
        """Bulk offer; RNG-stream- and state-identical to the scalar loop.

        The replacement probability ``w_i / W_i`` uses the running total, so
        it is computed from a cumulative sum; the per-item ``k`` uniforms are
        drawn as one ``(n, k)`` matrix, which consumes the PCG64 stream
        exactly like ``n`` sequential ``random(k)`` calls.  Only the very
        first stream item hits the ``p >= 1`` no-draw branch, handled
        separately.  Weights are validated up front (whole-batch reject).
        """
        n = len(items)
        if len(weights) != n:
            raise ValueError(
                f"items and weights length mismatch: {n} vs {len(weights)}"
            )
        if n == 0:
            return
        if _TEL.enabled:
            _BATCHES.inc()
            _BATCH_ITEMS.inc(n)
        weight_array = np.asarray(weights, dtype=float)
        if not np.all(weight_array > 0):
            bad = float(weight_array[np.flatnonzero(~(weight_array > 0))[0]])
            raise ValueError(f"weight must be positive, got {bad}")
        start = 0
        if self.count == 0:
            self.count = 1
            self.total_weight += float(weight_array[0])
            self._slots = [items[0]] * self.k
            start = 1
        remaining = n - start
        if remaining <= 0:
            return
        totals = self.total_weight + np.cumsum(weight_array[start:])
        probabilities = weight_array[start:] / totals
        draws = self._rng.random((remaining, self.k))
        rows, chains = np.nonzero(draws < probabilities[:, None])
        for row, chain in zip(rows.tolist(), chains.tolist()):
            self._slots[chain] = items[start + row]
        self.count += remaining
        self.total_weight = float(totals[-1])

    def sample(self) -> list:
        """The ``k`` chain contents (with replacement; empty before any update)."""
        if _TEL.enabled:
            _QUERIES.inc()
        return [item for item in self._slots if item is not None]

    def estimate_subset_weight(self, predicate) -> float:
        """Estimate of total weight of matching items: ``W * (hits / k)``."""
        sample = self.sample()
        if not sample:
            return 0.0
        hits = sum(1 for item in sample if predicate(item))
        return self.total_weight * hits / len(sample)

    def memory_bytes(self) -> int:
        """Modelled C-layout size: 4-byte id per chain."""
        return len(self.sample()) * 4

    def __len__(self) -> int:
        return len(self.sample())
