"""Columnar stream batches: the zero-copy unit of the ingest spine.

A :class:`StreamBatch` is one batch of timestamped stream items held as
parallel NumPy arrays — ``values``, ``timestamps``, and optional
``weights`` (``None`` means every item has unit weight, and stays ``None``
through every hop so the common unweighted case never materialises a ones
array).  It is the object that travels the whole ingest spine unchanged:

    service.ingest_batch → staging accumulator → ShardRouter.split
        → worker queue → fused apply → WAL ``BATCH`` record → update_batch

The contract (see ``docs/INGEST.md``):

* the three arrays agree on ``len()`` (axis 0 — values may be 2-D for
  matrix streams);
* ``timestamps`` and ``weights`` are float arrays; ``values`` keeps
  whatever dtype the producer supplied (integer keys, float samples,
  object arrays for arbitrary picklables, 2-D rows);
* a batch never copies on the way down: :meth:`take` with a slice and the
  router's strided round-robin selections are NumPy *views* of the parent
  arrays (``np.shares_memory`` holds), and :meth:`concat` of a single
  part returns that part itself;
* copies happen in exactly two places — a hash-mode router split (one
  stable sort groups each shard's items contiguously) and a multi-part
  fuse/flush concatenation.

Construction via ``StreamBatch(values, timestamps, weights)`` is trusting
(hot-path internal use: arguments must already be validated arrays);
:meth:`from_arrays` is the validating boundary constructor used at the
service edge.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.base import check_batch_lengths

__all__ = ["StreamBatch"]


class StreamBatch:
    """One columnar batch of ``(value, timestamp, weight)`` stream items.

    Attributes
    ----------
    values:
        Item payloads, any dtype, ``len(batch)`` along axis 0.
    timestamps:
        Arrival times, same length.
    weights:
        Per-item weights, same length — or ``None`` for all-unit weights
        (the representation every spine hop preserves).
    """

    __slots__ = ("values", "timestamps", "weights")

    def __init__(self, values, timestamps, weights=None):
        self.values = values
        self.timestamps = timestamps
        self.weights = weights

    @classmethod
    def from_arrays(cls, values, timestamps, weights=None) -> "StreamBatch":
        """Validating constructor: coerce to arrays, check lengths.

        The boundary where producer input (lists, tuples, arrays) becomes
        the columnar form; everything downstream trusts the result.  When
        the inputs are already NumPy arrays no copy is made.
        """
        values = np.asarray(values)
        timestamps = np.asarray(timestamps)
        weights = None if weights is None else np.asarray(weights)
        check_batch_lengths(values, timestamps, weights)
        return cls(values, timestamps, weights)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        weighted = "weighted" if self.weights is not None else "unit-weight"
        return f"StreamBatch(len={len(self)}, {weighted})"

    def take(self, indexer) -> "StreamBatch":
        """Sub-batch selected by ``indexer`` (slice, stride, or index array).

        Zero-copy when ``indexer`` is a basic slice (contiguous or
        strided): the arrays of the result are views of this batch's
        arrays.  Fancy (integer-array) indexing copies, as NumPy does.
        """
        return StreamBatch(
            self.values[indexer],
            self.timestamps[indexer],
            None if self.weights is None else self.weights[indexer],
        )

    def weights_or_ones(self) -> np.ndarray:
        """The weights array, materialising ones for the all-unit case."""
        if self.weights is not None:
            return self.weights
        return np.ones(len(self))

    def astuple(self) -> tuple:
        """``(values, timestamps, weights)`` — the legacy triple form."""
        return (self.values, self.timestamps, self.weights)

    @staticmethod
    def concat(parts: Sequence["StreamBatch"]) -> Optional["StreamBatch"]:
        """Fuse batches, preserving order; a single part is returned as-is.

        ``weights`` stays ``None`` when every part is unit-weight;
        otherwise unit-weight parts are filled with ones so the fused
        batch has one weight per item.  Returns ``None`` for an empty
        part list.
        """
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        values = np.concatenate([part.values for part in parts])
        timestamps = np.concatenate([part.timestamps for part in parts])
        if all(part.weights is None for part in parts):
            weights = None
        else:
            weights = np.concatenate(
                [part.weights_or_ones() for part in parts]
            )
        return StreamBatch(values, timestamps, weights)
