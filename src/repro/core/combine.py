"""Cross-shard combine helpers for persistent-sketch answers.

When a stream is partitioned across ``K`` shards (``repro.service``), each
shard holds a persistent sketch of its sub-stream and a query must combine
the ``K`` per-shard answers into one.  Mergeability makes this sound: for a
timestamp ``t`` the per-shard snapshots ``S_1(t) ... S_K(t)`` summarise
disjoint sub-streams whose union is the full prefix (ATTP) or suffix (BITP)
``A``, so ``merge(S_1(t), ..., S_K(t))`` carries the same error guarantee as
a single sketch over ``A`` (Agarwal et al., 2013).  This module collects the
combine modes the query coordinator needs:

* :func:`merge_sketches` — fold per-shard snapshots with their ``merge``;
* :func:`combine_sum` / :func:`combine_any` / :func:`combine_union` —
  scalar reductions for linear counts, membership, and key sets;
* :func:`combine_heavy_hitters` — union per-shard candidates and re-apply
  the ``phi`` threshold against the *global* weight.

All helpers treat their inputs as read-only; :func:`merge_sketches` copies
before merging so per-shard checkpoint snapshots are never mutated.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, Sequence


def merge_sketches(sketches: Sequence, *, copy_first: bool = True):
    """Merge per-shard sketch snapshots into one combined sketch.

    Parameters
    ----------
    sketches:
        Sequence of mergeable sketches (each must expose ``merge``).
        Typically the per-shard results of ``CheckpointChain.sketch_at`` —
        which may be *stored* snapshots, so mutating them in place would
        corrupt shard history.  ``None`` entries (shards with no data at
        the queried time) are skipped; at least one sketch must remain.
    copy_first:
        When ``True`` (default) the fold starts from a ``deepcopy`` of the
        first sketch, leaving every input untouched.  Pass ``False`` only
        when the first element is a throwaway.

    Returns
    -------
    A single sketch summarising the concatenation of all shards'
    sub-streams.
    """
    present = [sketch for sketch in sketches if sketch is not None]
    if not present:
        raise ValueError("merge_sketches needs at least one non-None sketch")
    merged = copy.deepcopy(present[0]) if copy_first else present[0]
    for sketch in present[1:]:
        merged.merge(sketch)
    return merged


def combine_sum(values: Iterable):
    """Sum per-shard numeric answers (linear queries: counts, range sums)."""
    total = None
    for value in values:
        total = value if total is None else total + value
    if total is None:
        raise ValueError("combine_sum needs at least one value")
    return total


def combine_any(flags: Iterable) -> bool:
    """OR per-shard membership answers (Bloom ``contains_at`` fan-out).

    Sound for hash-partitioned streams: the owning shard saw every
    occurrence of the key, all other shards report their own (possibly
    false-positive) answer, so the union keeps the one-sided no-false-
    negative guarantee.
    """
    return any(bool(flag) for flag in flags)


def combine_union(key_lists: Iterable[Iterable]) -> list:
    """Sorted, deduplicated union of per-shard key lists."""
    merged: set = set()
    for keys in key_lists:
        merged.update(keys)
    return sorted(merged)


def combine_heavy_hitters(
    per_shard_candidates: Sequence[Iterable],
    estimate: Callable[[int], float],
    threshold: float,
    total_weight: float,
) -> list:
    """Combine per-shard heavy-hitter candidates into the global answer.

    Recall is preserved by construction: if ``f(x) >= phi * W`` globally
    then on the shard owning ``x`` (hash partitioning) or on at least one
    shard (round-robin) ``f_k(x) >= phi * W_k``, since ``W_k <= W`` and the
    sub-stream frequencies sum to ``f(x)``.  So the union of per-shard
    candidate sets contains every true global heavy hitter; this helper then
    re-estimates each candidate *globally* and re-applies the cut
    ``phi * W`` to discard shard-local noise.

    Parameters
    ----------
    per_shard_candidates:
        One iterable of candidate keys per shard (each shard's local
        ``heavy_hitters*`` answer at its local threshold).
    estimate:
        Global point estimator, e.g. the summed per-shard
        ``estimate_at(t, key)``.
    threshold:
        The global ``phi`` in ``(0, 1]``.
    total_weight:
        Global stream weight ``W`` at the queried time.

    Returns
    -------
    Sorted keys whose global estimate passes ``threshold * total_weight``.
    """
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    cut = threshold * total_weight
    return sorted(
        key for key in combine_union(per_shard_candidates) if estimate(key) >= cut
    )
