"""ATTP persistent uniform random samples (Section 3 of the paper).

The key idea: run a streaming sampler, but *never delete* — when the sampler
would evict an item at time ``t``, mark the item with death time ``t``
instead.  The sample at any historical time ``t`` is then exactly the set of
recorded items that were born at or before ``t`` and not yet dead at ``t``.
Because the retention probability decays like ``k / i``, only ``O(k log n)``
items are ever recorded (Lemma 3.1).

Two constructions:

* :class:`PersistentTopKSample` — the mergeable top-k-by-random-priority
  sampler made persistent; yields a uniform *without replacement* sample of
  any prefix.  This is the building block of the paper's SAMPLING method.
* :class:`PersistentReservoirChains` — ``k`` independent persistent reservoir
  chains (Algorithm R with k=1 each); yields a uniform *with replacement*
  sample of any prefix and matches Lemma 3.1's analysis exactly.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.core.base import (
    TimestampGuard,
    check_batch_lengths,
    first_timestamp_violation,
)
from repro.evaluation.memory import (
    HEAP_ENTRY_BYTES,
    LOG_ROW_BYTES,
    SAMPLE_RECORD_BYTES,
)
from repro.telemetry.registry import TELEMETRY as _TEL, timed

# RNG stream salts: see PersistentTopKSample.__init__.
_RNG_SALT_TOPK = 101
_RNG_SALT_CHAINS = 102

_TOPK_UPDATES = _TEL.counter(
    "persistent_updates_total",
    "Stream items applied to a persistent structure, by structure.",
    structure="persistent_topk",
)
_TOPK_RECORDS = _TEL.counter(
    "sampler_records_total",
    "Lifetime records created by a persistent sampler, by sampler.",
    sampler="persistent_topk",
)
_TOPK_QUERY = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="persistent_topk",
    op="sample_at",
)
_CHAINS_UPDATES = _TEL.counter(
    "persistent_updates_total",
    "Stream items applied to a persistent structure, by structure.",
    structure="persistent_chains",
)
_CHAINS_RECORDS = _TEL.counter(
    "sampler_records_total",
    "Lifetime records created by a persistent sampler, by sampler.",
    sampler="persistent_chains",
)
_CHAINS_QUERY = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="persistent_chains",
    op="sample_at",
)


@dataclass
class SampleRecord:
    """One recorded item with its lifetime inside the evolving sample."""

    value: Any
    priority: float
    birth: float
    death: Optional[float] = None  # None = still in the current sample

    def alive_at(self, timestamp: float) -> bool:
        """Whether the record was part of the sample at ``timestamp``."""
        if self.birth > timestamp:
            return False
        return self.death is None or self.death > timestamp


class PersistentTopKSample:
    """ATTP uniform without-replacement sample of size ``k``.

    Every item receives an independent uniform priority.  An item enters the
    record set iff it is among the ``k`` largest priorities of the prefix at
    its arrival; when later displaced, its record is death-marked rather than
    deleted.  The set of records alive at ``t`` replays the top-k heap state
    at ``t``, i.e. a uniform without-replacement ``k``-sample of ``A^t``.

    Updates are O(1) amortised: the overwhelming majority of items fail a
    single threshold comparison and are never stored.
    """

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        # Component-salted stream: equal integer seeds across different
        # components (workloads, other samplers) stay uncorrelated.
        self._rng = np.random.default_rng([seed, _RNG_SALT_TOPK])
        self._guard = TimestampGuard()
        self._records: List[SampleRecord] = []  # in arrival (= birth) order
        self._birth_times: List[float] = []  # parallel array for bisect
        # Min-heap over (priority, record index) of the current k live records.
        self._heap: List[tuple] = []
        self._interval_index = None
        self._records_at_index_build = -1
        self.count = 0

    def update(self, value: Any, timestamp: float) -> None:
        """Offer one stream item."""
        self._guard.check(timestamp)
        self.count += 1
        if _TEL.enabled:
            _TOPK_UPDATES.inc()
        priority = float(self._rng.random())
        self._offer(value, timestamp, priority)

    def update_batch(self, values, timestamps) -> None:
        """Offer a batch of items; state- and RNG-identical to the scalar loop.

        Timestamps are validated vectorised, then all priorities for the
        valid prefix come from one ``Generator.random`` call — the PCG64
        stream yields the same numbers as per-item draws, so batched and
        sequential feeding produce identical sketches (even across a
        mid-batch monotonicity violation, which applies the prefix and
        re-raises like the scalar loop).  Use for bulk ingest: rejected
        (common-case) items cost one comparison each with no Python RNG call.
        """
        n = check_batch_lengths(values, timestamps)
        if n == 0:
            return
        timestamp_array = np.asarray(timestamps, dtype=float)
        bad = first_timestamp_violation(self._guard.last, timestamp_array)
        limit = n if bad < 0 else bad
        if limit:
            priorities = self._rng.random(limit)
            offer = self._offer
            heap = self._heap
            position = 0
            # cold start: per-item offers until the heap holds k records
            while position < limit and len(heap) < self.k:
                offer(
                    values[position],
                    float(timestamp_array[position]),
                    float(priorities[position]),
                )
                position += 1
            # Warm path: rejection is a pure comparison with no side
            # effects, so scan windows vectorised for the rare candidates
            # above the window-start threshold (a superset of the true
            # accepts — the threshold only rises) and re-check each against
            # the live threshold.  Skipped items are exactly the scalar
            # loop's rejections.
            while position < limit:
                window_end = min(position + 4096, limit)
                candidates = np.nonzero(
                    priorities[position:window_end] > heap[0][0]
                )[0]
                for relative in candidates.tolist():
                    index = position + relative
                    priority = float(priorities[index])
                    if priority > heap[0][0]:
                        offer(values[index], float(timestamp_array[index]), priority)
                position = window_end
            self.count += limit
            if _TEL.enabled:
                _TOPK_UPDATES.inc(limit)
            self._guard.last = float(timestamp_array[limit - 1])
        if bad >= 0:
            self._guard.check(float(timestamp_array[bad]))  # raises
            raise AssertionError("unreachable: batch validation found no violation")

    def update_many(self, values, timestamps) -> None:
        """Backward-compatible alias of :meth:`update_batch`."""
        self.update_batch(values, timestamps)

    def _offer(self, value: Any, timestamp: float, priority: float) -> None:
        heap = self._heap
        if len(heap) >= self.k and priority <= heap[0][0]:
            return  # common case: rejected by a single comparison
        record = SampleRecord(value=value, priority=priority, birth=timestamp)
        index = len(self._records)
        self._records.append(record)
        self._birth_times.append(timestamp)
        if _TEL.enabled:
            _TOPK_RECORDS.inc()
        if len(heap) < self.k:
            heapq.heappush(heap, (priority, index))
        else:
            _, evicted = heapq.heapreplace(heap, (priority, index))
            self._records[evicted].death = timestamp

    @timed(_TOPK_QUERY)
    def sample_at(self, timestamp: float) -> list:
        """Uniform without-replacement sample of the prefix ``A^timestamp``.

        Returns at most ``k`` values; fewer when fewer items had arrived.
        Uses the interval index when one has been built (see
        :meth:`build_interval_index`), else a linear record scan.
        """
        if math.isnan(timestamp):
            raise ValueError("query timestamp must not be NaN")
        index = self._interval_index
        if index is not None and self._records_at_index_build == len(self._records):
            return index.stab(timestamp)
        end = bisect.bisect_right(self._birth_times, timestamp)
        return [
            record.value
            for record in self._records[:end]
            if record.alive_at(timestamp)
        ]

    def build_interval_index(self) -> None:
        """Index record lifetimes for O(log m + k) historical queries.

        The paper's "Queries" paragraph: store the records as intervals and
        stab them with an interval tree.  The index is static — it serves
        ``sample_at`` until the next update, after which queries fall back
        to the scan until the index is rebuilt.
        """
        from repro.core.interval_index import IntervalIndex

        # A record displaced at its own birth instant has an empty lifetime
        # and can never be part of a sample; skip it.
        self._interval_index = IntervalIndex(
            [
                (record.birth, record.death, record.value)
                for record in self._records
                if record.death is None or record.death > record.birth
            ]
        )
        self._records_at_index_build = len(self._records)

    def sample_now(self) -> list:
        """The current sample (equivalent to a plain top-k sampler)."""
        return [self._records[index].value for _, index in self._heap]

    def records(self) -> List[SampleRecord]:
        """All records ever kept (read-mostly; used by tests and queries)."""
        return self._records

    def memory_bytes(self) -> int:
        """Modelled C-layout size: a 28-byte record (id + priority + two
        timestamps) per kept item, plus the live top-k heap (12 bytes per
        entry: priority + record index)."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        return {
            "records": len(self._records) * SAMPLE_RECORD_BYTES,
            "live_heap": len(self._heap) * HEAP_ENTRY_BYTES,
        }

    def space_bound_bytes(self) -> int:
        """Lemma 3.1 bound at the current stream position:
        ``k * (1 + ln n)`` expected records plus the live heap."""
        n = max(self.count, 1)
        records_bound = self.k * (1 + math.ceil(math.log(n))) if n > 1 else self.k
        return records_bound * SAMPLE_RECORD_BYTES + self.k * HEAP_ENTRY_BYTES

    def __len__(self) -> int:
        return len(self._records)


class PersistentReservoirChains:
    """ATTP uniform with-replacement sample via ``k`` persistent chains.

    Chain ``j`` replaces its held item by the i-th arrival with probability
    ``1/i`` (classic single-slot reservoir).  Replacement death-marks the old
    record, so chain ``j``'s record alive at ``t`` is a uniform draw from
    ``A^t``, independently across chains — Lemma 3.1 bounds the total records
    by ``k * H_n``.
    """

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = np.random.default_rng([seed, _RNG_SALT_CHAINS])
        self._guard = TimestampGuard()
        # Per chain: parallel lists of (birth_time, value); a record dies when
        # the next record of the same chain is born, so no death field needed.
        self._births: List[List[float]] = [[] for _ in range(k)]
        self._values: List[List[Any]] = [[] for _ in range(k)]
        self.count = 0

    def update(self, value: Any, timestamp: float) -> None:
        """Offer one stream item to every chain."""
        self._guard.check(timestamp)
        self.count += 1
        if _TEL.enabled:
            _CHAINS_UPDATES.inc()
        if self.count == 1:
            for chain in range(self.k):
                self._births[chain].append(timestamp)
                self._values[chain].append(value)
            if _TEL.enabled:
                _CHAINS_RECORDS.inc(self.k)
            return
        hits = self._rng.random(self.k) < (1.0 / self.count)
        replaced = np.flatnonzero(hits)
        for chain in replaced:
            self._births[chain].append(timestamp)
            self._values[chain].append(value)
        if _TEL.enabled and replaced.size:
            _CHAINS_RECORDS.inc(int(replaced.size))

    def update_batch(self, values, timestamps) -> None:
        """Offer a batch; state- and RNG-identical to the scalar loop.

        The per-item ``k`` uniforms for the valid prefix are drawn as one
        ``(m, k)`` matrix (same PCG64 consumption as ``m`` sequential
        ``random(k)`` calls) and the rare replacements applied row by row.
        A mid-batch monotonicity violation applies the prefix and re-raises,
        exactly like the scalar loop.
        """
        n = check_batch_lengths(values, timestamps)
        if n == 0:
            return
        timestamp_array = np.asarray(timestamps, dtype=float)
        bad = first_timestamp_violation(self._guard.last, timestamp_array)
        limit = n if bad < 0 else bad
        start = 0
        if limit and self.count == 0:
            first_timestamp = float(timestamp_array[0])
            for chain in range(self.k):
                self._births[chain].append(first_timestamp)
                self._values[chain].append(values[0])
            self.count = 1
            start = 1
            if _TEL.enabled:
                _CHAINS_RECORDS.inc(self.k)
        remaining = limit - start
        if remaining > 0:
            draws = self._rng.random((remaining, self.k))
            thresholds = 1.0 / np.arange(
                self.count + 1, self.count + remaining + 1
            )
            rows, chains = np.nonzero(draws < thresholds[:, None])
            for row, chain in zip(rows.tolist(), chains.tolist()):
                self._births[chain].append(float(timestamp_array[start + row]))
                self._values[chain].append(values[start + row])
            self.count += remaining
            if _TEL.enabled:
                _CHAINS_RECORDS.inc(int(rows.size))
        if _TEL.enabled and limit:
            _CHAINS_UPDATES.inc(limit)
        if limit:
            self._guard.last = float(timestamp_array[limit - 1])
        if bad >= 0:
            self._guard.check(float(timestamp_array[bad]))  # raises
            raise AssertionError("unreachable: batch validation found no violation")

    @timed(_CHAINS_QUERY)
    def sample_at(self, timestamp: float) -> list:
        """With-replacement uniform sample of ``A^timestamp`` (one per chain)."""
        out = []
        for chain in range(self.k):
            idx = bisect.bisect_right(self._births[chain], timestamp) - 1
            if idx >= 0:
                out.append(self._values[chain][idx])
        return out

    def total_records(self) -> int:
        """Number of records ever kept, across all chains (E = k * H_n)."""
        return sum(len(births) for births in self._births)

    def memory_bytes(self) -> int:
        """Modelled C-layout size per record: id(4) + birth time(8)."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        return {"records": self.total_records() * LOG_ROW_BYTES}

    def space_bound_bytes(self) -> int:
        """Lemma 3.1 bound at the current stream position:
        ``k * H_n`` expected records of 12 bytes each."""
        n = max(self.count, 1)
        harmonic = 1 + math.ceil(math.log(n)) if n > 1 else 1
        return self.k * harmonic * LOG_ROW_BYTES

    def __len__(self) -> int:
        return self.total_records()
