"""Small time-indexing helpers shared by the persistent structures.

Persistent sketches repeatedly need "the latest recorded state at or before
time t" over an append-only, time-ordered history.  ``History`` wraps the
bisect bookkeeping once so each sketch stores plain parallel lists.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple


class History:
    """An append-only sequence of ``(timestamp, value)`` with time lookups.

    Timestamps must be non-decreasing (appends enforce it).  ``value_at(t)``
    returns the value of the last entry with ``timestamp <= t`` — exactly the
    "state as of time t" semantics of a checkpoint chain.
    """

    __slots__ = ("_times", "_values")

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[Any] = []

    def append(self, timestamp: float, value: Any) -> None:
        """Record a new state; timestamps may repeat but not decrease."""
        if self._times and timestamp < self._times[-1]:
            raise ValueError(
                f"timestamp {timestamp} is earlier than the previous {self._times[-1]}"
            )
        self._times.append(timestamp)
        self._values.append(value)

    def value_at(self, timestamp: float, default: Any = None) -> Any:
        """Value of the last entry at or before ``timestamp``."""
        idx = bisect.bisect_right(self._times, timestamp) - 1
        if idx < 0:
            return default
        return self._values[idx]

    def entry_at(self, timestamp: float) -> Optional[Tuple[float, Any]]:
        """``(time, value)`` of the last entry at or before ``timestamp``."""
        idx = bisect.bisect_right(self._times, timestamp) - 1
        if idx < 0:
            return None
        return self._times[idx], self._values[idx]

    def index_at(self, timestamp: float) -> int:
        """Index of the last entry at or before ``timestamp``, or ``-1``."""
        return bisect.bisect_right(self._times, timestamp) - 1

    def times(self) -> List[float]:
        """A copy of the recorded timestamps (non-decreasing order)."""
        return list(self._times)

    def last(self) -> Optional[Tuple[float, Any]]:
        """The most recent entry, or None when empty."""
        if not self._times:
            return None
        return self._times[-1], self._values[-1]

    def __iter__(self) -> Iterator[Tuple[float, Any]]:
        return iter(zip(self._times, self._values))

    def __len__(self) -> int:
        return len(self._times)


class GeometricHistory:
    """History of a non-decreasing scalar, checkpointed geometrically.

    A new entry is recorded only when the value has grown by a factor of at
    least ``1 + delta`` since the last entry, so the history holds
    ``O(log(max/min) / delta)`` entries and ``value_at(t)`` underestimates the
    true value at ``t`` by at most that factor.  Used for W(t) and
    ``||A(t)||_F^2`` bookkeeping inside the samplers.
    """

    __slots__ = ("delta", "_history", "_last_recorded")

    def __init__(self, delta: float = 0.01):
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta
        self._history = History()
        self._last_recorded = 0.0

    def observe(self, timestamp: float, value: float) -> None:
        """Offer the current running value; records only on geometric growth."""
        if value < self._last_recorded:
            raise ValueError("GeometricHistory requires a non-decreasing value")
        if self._last_recorded == 0.0 or value >= self._last_recorded * (1.0 + self.delta):
            self._history.append(timestamp, value)
            self._last_recorded = value

    def value_at(self, timestamp: float) -> float:
        """Recorded value at or before ``timestamp`` (a slight underestimate)."""
        return self._history.value_at(timestamp, default=0.0)

    def memory_bytes(self) -> int:
        """Modelled size: two 8-byte scalars per entry."""
        return len(self._history) * 16

    def __len__(self) -> int:
        return len(self._history)


def count_at_or_before(timestamps: List[float], t: float) -> int:
    """How many of the (sorted) ``timestamps`` are ``<= t``."""
    return bisect.bisect_right(timestamps, t)
