"""BITP persistent random samples (Section 3.2 of the paper).

A BITP query at time ``s`` asks for a sample of the *suffix* ``A[s, t_now]``.
Simulate without-replacement (priority) sampling and observe: item ``i`` can
appear in the top-``k`` of some suffix only while fewer than ``k`` *later*
items have larger priority.  Once ``k`` later items outrank it, it is dead
for every future query and can be discarded.

A naive implementation pays O(k) per item; the paper's batched variant caches
arrivals and, whenever the cache reaches the size of the kept set, performs
one new-to-old *compaction scan* that retains an item iff fewer than ``k``
already-scanned (= later) items have larger priority — O(log k) amortised
expected time per item, at the cost of a constant-factor space increase
(Corollary 3.1).

Discarding an item never hides a kill: if ``k`` later items outrank item
``x`` they also outrank every earlier item with smaller priority than ``x``,
so scanning only survivors plus the cache is sound.

``slack`` extra survivors per scan keep the (k+1)-th largest priority of any
suffix available, so priority-sampling subset-sum estimates stay unbiased.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, List

import numpy as np

from repro.core.base import (
    TimestampGuard,
    check_batch_lengths,
    check_positive_weight,
    first_invalid_weight,
    first_timestamp_violation,
)
from repro.evaluation.memory import (
    COUNTER_BYTES,
    FLOAT_BYTES,
    KEY_BYTES,
    PRIORITY_BYTES,
    TIMESTAMP_BYTES,
)
from repro.telemetry.registry import TELEMETRY as _TEL, timed

_RNG_SALT_BITP = 105

#: BITP entry: id + timestamp + weight + priority + arrival counter.
_ENTRY_BYTES = (
    KEY_BYTES + TIMESTAMP_BYTES + FLOAT_BYTES + PRIORITY_BYTES + COUNTER_BYTES
)  # = 36

_UPDATES = _TEL.counter(
    "persistent_updates_total",
    "Stream items applied to a persistent structure, by structure.",
    structure="bitp_priority",
)
_COMPACTIONS = _TEL.counter(
    "bitp_compaction_scans_total",
    "New-to-old compaction scans run by the BITP priority sampler.",
)
_QUERY_SECONDS = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="bitp_priority",
    op="sample_since",
)


@dataclass
class _Entry:
    value: Any
    timestamp: float
    weight: float
    priority: float
    arrival: int  # 1-based arrival index; used to estimate suffix sizes


class BitpPrioritySample:
    """BITP weighted (or uniform) without-replacement sample of size ``k``.

    With ``weight=1`` updates this is the BITP uniform sampler; with
    ``weight=||a_i||^2`` it is BITP norm sampling.  ``sample_since(s)``
    returns the top-``k`` priority sample of all items with timestamp >= s.
    """

    def __init__(self, k: int, seed: int = 0, slack: int = 1, batch_factor: float = 1.0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        if batch_factor <= 0:
            raise ValueError(f"batch_factor must be positive, got {batch_factor}")
        self.k = k
        self.slack = slack
        self.batch_factor = batch_factor
        # Component-salted stream (see PersistentTopKSample for rationale).
        self._rng = np.random.default_rng([seed, _RNG_SALT_BITP])
        self._guard = TimestampGuard()
        self._kept: List[_Entry] = []  # survivors, in arrival order
        self._cache: List[_Entry] = []  # recent arrivals, in arrival order
        self.count = 0
        self.total_weight = 0.0
        self.peak_memory_bytes = 0
        self.compaction_scans = 0

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> None:
        """Offer one stream item with positive weight."""
        check_positive_weight(weight)
        self._guard.check(timestamp)
        self.count += 1
        self.total_weight += weight
        if _TEL.enabled:
            _UPDATES.inc()
        u = float(self._rng.random())
        while u == 0.0:
            u = float(self._rng.random())
        self._cache.append(
            _Entry(value, timestamp, weight, weight / u, self.count)
        )
        if len(self._cache) >= max(
            2 * self.k, int(self.batch_factor * len(self._kept))
        ):
            self._compact()
        else:
            self._track_peak()

    def update_batch(self, values, timestamps, weights=None) -> None:
        """Offer a batch; state- and RNG-identical to the scalar loop.

        Weights and timestamps are validated vectorised, then the uniforms
        for the valid prefix come from one ``Generator.random`` call,
        matching the sequential PCG64 stream (up to the astronomically
        unlikely ``u == 0`` redraw).  Cache fills and compaction scans
        happen at exactly the scalar positions.  A mid-batch weight or
        timestamp violation applies the prefix before it and raises, in
        the scalar check order.
        """
        n = check_batch_lengths(values, timestamps, weights)
        if n == 0:
            return
        timestamp_array = np.asarray(timestamps, dtype=float)
        weight_array = (
            np.ones(n, dtype=float)
            if weights is None
            else np.asarray(weights, dtype=float)
        )
        bad_weight = first_invalid_weight(weight_array)
        bad_time = first_timestamp_violation(self._guard.last, timestamp_array)
        candidates = [index for index in (bad_weight, bad_time) if index >= 0]
        bad = min(candidates) if candidates else -1
        limit = n if bad < 0 else bad
        if limit:
            uniforms = self._rng.random(limit)
            for index in range(limit):
                weight = float(weight_array[index])
                self.count += 1
                self.total_weight += weight
                u = float(uniforms[index])
                while u == 0.0:
                    u = float(self._rng.random())
                self._cache.append(
                    _Entry(
                        values[index],
                        float(timestamp_array[index]),
                        weight,
                        weight / u,
                        self.count,
                    )
                )
                if len(self._cache) >= max(
                    2 * self.k, int(self.batch_factor * len(self._kept))
                ):
                    self._compact()
            self._guard.last = float(timestamp_array[limit - 1])
            self._track_peak()
            if _TEL.enabled:
                _UPDATES.inc(limit)
        if bad >= 0:
            # Reproduce the scalar error, in the scalar check order.
            check_positive_weight(float(weight_array[bad]))
            self._guard.check(float(timestamp_array[bad]))
            raise AssertionError("unreachable: batch validation found no violation")

    def update_many(self, values, timestamps, weights=None) -> None:
        """Backward-compatible alias of :meth:`update_batch`."""
        self.update_batch(values, timestamps, weights)

    def _compact(self) -> None:
        """New-to-old scan keeping items with < k + slack later, larger priorities."""
        self.compaction_scans += 1
        if _TEL.enabled:
            _COMPACTIONS.inc()
        self._track_peak()
        merged = self._kept + self._cache  # arrival order
        limit = self.k + self.slack
        top: List[float] = []  # min-heap of the `limit` largest scanned priorities
        survivors: List[_Entry] = []
        for entry in reversed(merged):
            if len(top) < limit:
                survivors.append(entry)
                heapq.heappush(top, entry.priority)
            elif entry.priority > top[0]:
                survivors.append(entry)
                heapq.heapreplace(top, entry.priority)
            # else: k+slack later items outrank it -> dead for all suffixes.
        survivors.reverse()
        self._kept = survivors
        self._cache = []
        self._track_peak()

    def _track_peak(self) -> None:
        size = self.memory_bytes()
        if size > self.peak_memory_bytes:
            self.peak_memory_bytes = size

    def _entries_since(self, timestamp: float) -> List[_Entry]:
        self._compact()
        return [entry for entry in self._kept if entry.timestamp >= timestamp]

    @timed(_QUERY_SECONDS)
    def sample_since(self, timestamp: float) -> list:
        """``(value, adjusted_weight)`` top-k priority sample of ``A[timestamp, now]``.

        Adjusted weights use the (k+1)-th largest suffix priority as the
        threshold, so subset sums over the window are estimated unbiasedly.
        """
        window = self._entries_since(timestamp)
        window.sort(key=lambda entry: -entry.priority)
        kept = window[: self.k]
        tau = window[self.k].priority if len(window) > self.k else 0.0
        return [(entry.value, max(entry.weight, tau)) for entry in kept]

    def raw_sample_since(self, timestamp: float) -> list:
        """``(value, original_weight)`` pairs of the suffix sample."""
        window = self._entries_since(timestamp)
        window.sort(key=lambda entry: -entry.priority)
        return [(entry.value, entry.weight) for entry in window[: self.k]]

    def estimate_subset_sum_since(self, timestamp: float, predicate: Callable) -> float:
        """Unbiased estimate of the matching total weight in ``A[timestamp, now]``."""
        return sum(w for value, w in self.sample_since(timestamp) if predicate(value))

    def suffix_count_since(self, timestamp: float) -> int:
        """Estimated number of items with ``t >= timestamp``.

        Exact while the oldest retained entry at or after ``timestamp`` is the
        true first suffix item; otherwise off by the few discarded items in
        between (relative error ~1/k, see module docstring).
        """
        window = self._entries_since(timestamp)
        if not window:
            return 0
        return self.count - window[0].arrival + 1

    def kept_count(self) -> int:
        """Survivors + cached entries currently stored."""
        return len(self._kept) + len(self._cache)

    def memory_bytes(self) -> int:
        """Entry: id(4)+time(8)+weight(8)+priority(8)+arrival(8)."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        return {
            "kept_entries": len(self._kept) * _ENTRY_BYTES,
            "cache_entries": len(self._cache) * _ENTRY_BYTES,
        }

    def space_bound_bytes(self) -> int:
        """Corollary 3.1 bound: ``O((k + slack) log n)`` expected survivors,
        plus the arrival cache that can grow to a ``batch_factor`` multiple
        of the kept set before the next compaction scan."""
        base = 2 * self.k
        if self.count > 1:
            kept_bound = (self.k + self.slack) * (1 + math.ceil(math.log(self.count)))
        else:
            kept_bound = self.k + self.slack
        cache_bound = max(base, math.ceil(self.batch_factor * kept_bound))
        return (kept_bound + cache_bound) * _ENTRY_BYTES

    def __len__(self) -> int:
        return self.kept_count()
