"""Checkpoint chaining: streaming sketch -> ATTP sketch (Section 4, Lemma 4.1).

Run the streaming sketch as usual; additionally snapshot ("checkpoint") its
full state whenever the stream weight has grown by a factor ``1 + eps`` since
the last checkpoint.  A query at time ``t`` is answered from the latest
checkpoint at or before ``t``; the weight that arrived after that checkpoint
is at most ``eps * W(t)``, so any additive-error guarantee of the base sketch
degrades by only ``eps * W(t)``.  The number of checkpoints is
``O((1/eps) log W)`` because the checkpoint weights grow geometrically.

The snapshot taken when item ``a_i`` crosses the threshold is of the state
*before* ``a_i`` is applied, stamped with the previous element's timestamp —
exactly the paper's construction.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Callable, Optional

from repro.core.base import TimestampGuard, check_positive_weight
from repro.core.timeindex import History


class CheckpointChain:
    """Generic full-sketch checkpoint chain over any additive-error sketch.

    Parameters
    ----------
    sketch_factory:
        Zero-argument callable building a fresh streaming sketch.
    eps:
        Relative weight growth between checkpoints (the chaining error).
    apply_update:
        ``(sketch, value, weight) -> None``; defaults to
        ``sketch.update(value, weight)`` and falls back to
        ``sketch.update(value)`` for unweighted sketches.
    snapshot:
        ``(sketch) -> frozen state``; defaults to ``copy.deepcopy``.
    """

    def __init__(
        self,
        sketch_factory: Callable[[], Any],
        eps: float,
        apply_update: Optional[Callable] = None,
        snapshot: Optional[Callable] = None,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.eps = eps
        self.live = sketch_factory()
        self._apply_update = apply_update or _resolve_apply(self.live)
        self._snapshot = snapshot or copy.deepcopy
        self._guard = TimestampGuard()
        self._checkpoints = History()
        self._weight_at_last_checkpoint = 0.0
        self._previous_timestamp: Optional[float] = None
        self.total_weight = 0.0
        self.count = 0

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> None:
        """Feed one stream item through the chain."""
        check_positive_weight(weight)
        self._guard.check(timestamp)
        threshold_crossed = (
            self._weight_at_last_checkpoint > 0.0
            and self.total_weight - self._weight_at_last_checkpoint
            > self.eps * self._weight_at_last_checkpoint
        )
        if threshold_crossed:
            # Snapshot the state *before* this item, at the previous timestamp.
            self._checkpoints.append(
                self._previous_timestamp, self._snapshot(self.live)
            )
            self._weight_at_last_checkpoint = self.total_weight
        self._apply_update(self.live, value, weight)
        self.total_weight += weight
        self.count += 1
        self._previous_timestamp = timestamp
        if self._weight_at_last_checkpoint == 0.0:
            # Seed the chain: first checkpoint after the first item.
            self._checkpoints.append(timestamp, self._snapshot(self.live))
            self._weight_at_last_checkpoint = self.total_weight

    def sketch_at(self, timestamp: float) -> Any:
        """The checkpointed sketch state as of ``timestamp`` (or None).

        The returned object is the stored snapshot; callers must not mutate
        it.  For ``timestamp`` at or past the last update, the live sketch is
        returned (zero staleness).
        """
        if self._previous_timestamp is not None and timestamp >= self._previous_timestamp:
            return self.live
        return self._checkpoints.value_at(timestamp)

    def num_checkpoints(self) -> int:
        """Number of stored snapshots."""
        return len(self._checkpoints)

    def checkpoints(self):
        """Iterate ``(timestamp, snapshot)`` pairs (oldest first)."""
        return iter(self._checkpoints)

    def memory_bytes(self) -> int:
        """Sum of snapshot sizes (via each snapshot's ``memory_bytes``) plus
        the live sketch and an 8-byte timestamp per checkpoint."""
        total = self.live.memory_bytes()
        for _, snap in self._checkpoints:
            total += snap.memory_bytes() + 8
        return total


def apply_weighted(target: Any, value: Any, weight: float) -> None:
    """Standard apply for sketches with ``update(value, weight)``."""
    target.update(value, weight)


def apply_unweighted(target: Any, value: Any, weight: float) -> None:
    """Apply for single-argument sketches; rejects non-unit weights."""
    if weight != 1.0:
        raise ValueError(
            f"{type(target).__name__}.update takes no weight; got weight={weight}"
        )
    target.update(value)


def apply_value_only(target: Any, value: Any, weight: float) -> None:
    """Apply that drops the weight (e.g. matrix rows into FD sketches)."""
    target.update(value)


def apply_int_weighted(target: Any, value: Any, weight: float) -> None:
    """Apply for integer-count sketches (e.g. Misra-Gries)."""
    target.update(value, int(weight))


def _resolve_apply(sketch: Any) -> Callable:
    """Pick the update convention once, from the sketch's signature.

    Sketches with a two-argument ``update(value, weight)`` receive the weight;
    single-argument ones (e.g. KLL) must only be fed unit weights.  The
    returned functions are module-level so chains stay picklable.
    """
    params = list(inspect.signature(sketch.update).parameters.values())
    if len(params) >= 2:
        return apply_weighted
    return apply_unweighted
