"""Checkpoint chaining: streaming sketch -> ATTP sketch (Section 4, Lemma 4.1).

Run the streaming sketch as usual; additionally snapshot ("checkpoint") its
full state whenever the stream weight has grown by a factor ``1 + eps`` since
the last checkpoint.  A query at time ``t`` is answered from the latest
checkpoint at or before ``t``; the weight that arrived after that checkpoint
is at most ``eps * W(t)``, so any additive-error guarantee of the base sketch
degrades by only ``eps * W(t)``.  The number of checkpoints is
``O((1/eps) log W)`` because the checkpoint weights grow geometrically.

The snapshot taken when item ``a_i`` crosses the threshold is of the state
*before* ``a_i`` is applied, stamped with the previous element's timestamp —
exactly the paper's construction.
"""

from __future__ import annotations

import copy
import inspect
import math
from typing import Any, Callable, Optional

import numpy as np

from repro.core.base import (
    TimestampGuard,
    check_batch_lengths,
    check_positive_weight,
    first_invalid_weight,
    first_timestamp_violation,
)
from repro.core.timeindex import History
from repro.evaluation.memory import CHECKPOINT_ENTRY_BYTES
from repro.telemetry.registry import TELEMETRY as _TEL, timed

_UPDATES = _TEL.counter(
    "persistent_updates_total",
    "Stream items applied to a persistent structure, by structure.",
    structure="checkpoint_chain",
)
_SEALS = _TEL.counter(
    "checkpoint_seals_total",
    "Checkpoint snapshots sealed, by structure.",
    structure="checkpoint_chain",
)
_QUERY_SECONDS = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="checkpoint_chain",
    op="sketch_at",
)


class CheckpointChain:
    """Generic full-sketch checkpoint chain over any additive-error sketch.

    Parameters
    ----------
    sketch_factory:
        Zero-argument callable building a fresh streaming sketch.
    eps:
        Relative weight growth between checkpoints (the chaining error).
    apply_update:
        ``(sketch, value, weight) -> None``; defaults to
        ``sketch.update(value, weight)`` and falls back to
        ``sketch.update(value)`` for unweighted sketches.
    snapshot:
        ``(sketch) -> frozen state``; defaults to ``copy.deepcopy``.
    """

    def __init__(
        self,
        sketch_factory: Callable[[], Any],
        eps: float,
        apply_update: Optional[Callable] = None,
        snapshot: Optional[Callable] = None,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.eps = eps
        self.live = sketch_factory()
        self._apply_update = apply_update or _resolve_apply(self.live)
        self._apply_batch = resolve_apply_batch(self.live, self._apply_update)
        self._snapshot = snapshot or copy.deepcopy
        self._guard = TimestampGuard()
        self._checkpoints = History()
        self._weight_at_last_checkpoint = 0.0
        self._previous_timestamp: Optional[float] = None
        self.total_weight = 0.0
        self.count = 0

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> None:
        """Feed one stream item through the chain."""
        check_positive_weight(weight)
        self._guard.check(timestamp)
        threshold_crossed = (
            self._weight_at_last_checkpoint > 0.0
            and self.total_weight - self._weight_at_last_checkpoint
            > self.eps * self._weight_at_last_checkpoint
        )
        if threshold_crossed:
            # Snapshot the state *before* this item, at the previous timestamp.
            self._checkpoints.append(
                self._previous_timestamp, self._snapshot(self.live)
            )
            self._weight_at_last_checkpoint = self.total_weight
            if _TEL.enabled:
                _SEALS.inc()
        self._apply_update(self.live, value, weight)
        self.total_weight += weight
        self.count += 1
        self._previous_timestamp = timestamp
        if _TEL.enabled:
            _UPDATES.inc()
        if self._weight_at_last_checkpoint == 0.0:
            # Seed the chain: first checkpoint after the first item.
            self._checkpoints.append(timestamp, self._snapshot(self.live))
            self._weight_at_last_checkpoint = self.total_weight
            if _TEL.enabled:
                _SEALS.inc()

    def update_batch(self, values, timestamps, weights=None) -> None:
        """Feed one batch through the chain; checkpoint-exact vs the scalar loop.

        Checkpoint trigger points *within* the batch are located by binary
        search on the cumulative batch weight (a checkpoint fires before the
        first item whose pre-application total exceeds ``(1+eps)`` times the
        weight at the last checkpoint — the same rule :meth:`update` applies
        per item), and the runs between triggers are applied to the live
        sketch through its vectorized ``update_batch`` when it has one.
        A mid-batch weight or timestamp violation applies the prefix before
        it and raises, exactly like the scalar loop.
        """
        n = check_batch_lengths(values, timestamps, weights)
        if n == 0:
            return
        timestamp_array = np.asarray(timestamps, dtype=float)
        weight_array = (
            np.ones(n, dtype=float)
            if weights is None
            else np.asarray(weights, dtype=float)
        )
        bad_weight = first_invalid_weight(weight_array)
        bad_time = first_timestamp_violation(self._guard.last, timestamp_array)
        candidates = [index for index in (bad_weight, bad_time) if index >= 0]
        if candidates:
            bad = min(candidates)
            if bad:
                self.update_batch(
                    values[:bad], timestamp_array[:bad], weight_array[:bad]
                )
            # Reproduce the scalar error, in the scalar check order.
            check_positive_weight(float(weight_array[bad]))
            self._guard.check(float(timestamp_array[bad]))
            raise AssertionError("unreachable: batch validation found no violation")
        # cumulative[i] = batch weight before item i; fixed for the whole batch.
        cumulative = np.concatenate(([0.0], np.cumsum(weight_array)))
        base = self.total_weight
        position = 0
        if self._weight_at_last_checkpoint == 0.0:
            # Seed the chain exactly like the scalar path: first item, then
            # the first checkpoint.
            self.update(
                values[0], float(timestamp_array[0]), float(weight_array[0])
            )
            position = 1
        while position < n:
            limit = (1.0 + self.eps) * self._weight_at_last_checkpoint
            trigger = int(np.searchsorted(cumulative, limit - base, side="right"))
            if trigger <= position:
                # The next item crosses the threshold: snapshot the state
                # before it, at the previous item's timestamp.
                self._checkpoints.append(
                    self._previous_timestamp, self._snapshot(self.live)
                )
                self._weight_at_last_checkpoint = self.total_weight
                if _TEL.enabled:
                    _SEALS.inc()
                continue
            end = min(trigger, n)
            self._guard.last = float(timestamp_array[end - 1])
            if self._apply_batch is not None:
                self._apply_batch(
                    self.live, values[position:end], weight_array[position:end]
                )
            else:
                for i in range(position, end):
                    self._apply_update(self.live, values[i], float(weight_array[i]))
            self.total_weight = base + float(cumulative[end])
            self.count += end - position
            if _TEL.enabled:
                _UPDATES.inc(end - position)
            self._previous_timestamp = float(timestamp_array[end - 1])
            position = end

    @timed(_QUERY_SECONDS)
    def sketch_at(self, timestamp: float) -> Any:
        """The checkpointed sketch state as of ``timestamp`` (or None).

        The returned object is the stored snapshot; callers must not mutate
        it.  For ``timestamp`` at or past the last update, the live sketch is
        returned (zero staleness).
        """
        if self._previous_timestamp is not None and timestamp >= self._previous_timestamp:
            return self.live
        return self._checkpoints.value_at(timestamp)

    def num_checkpoints(self) -> int:
        """Number of stored snapshots."""
        return len(self._checkpoints)

    def checkpoints(self):
        """Iterate ``(timestamp, snapshot)`` pairs (oldest first)."""
        return iter(self._checkpoints)

    def checkpoints_between(self, start: float, end: float) -> list:
        """Timestamps of stored checkpoints with ``start <= ts <= end``.

        Ground truth for explain-plan fidelity checks: a
        :meth:`plan_at` answer sourced from a checkpoint must name a
        timestamp this method returns for the enclosing range.
        """
        return [ts for ts, _ in self._checkpoints if start <= ts <= end]

    def plan_at(self, timestamp: float) -> dict:
        """Explain :meth:`sketch_at`: what *would* answer, without answering.

        Mirrors the ``sketch_at`` resolution rule exactly (shared bisect
        over the same history) and reports: the ``source`` (``"live"`` for
        zero-staleness reads at/past the last update, ``"checkpoint"`` for
        a sealed snapshot, ``"empty"`` before the first checkpoint), the
        chosen checkpoint's index and timestamp, how many sealed snapshots
        vs. live partials the read touches, and the chaining error bound
        contributed (``eps``, relative to ``W(t)``; ``0`` for live reads).
        """
        stored = len(self._checkpoints)
        base = {
            "structure": "checkpoint_chain",
            "checkpoints_stored": stored,
            "checkpoint_index": None,
            "checkpoint_timestamp": None,
        }
        if (
            self._previous_timestamp is not None
            and timestamp >= self._previous_timestamp
        ):
            base.update(source="live", sealed_read=0, live_partial=1, error_bound=0.0)
            return base
        index = self._checkpoints.index_at(timestamp)
        if index < 0:
            base.update(source="empty", sealed_read=0, live_partial=0, error_bound=0.0)
            return base
        base.update(
            source="checkpoint",
            checkpoint_index=index,
            checkpoint_timestamp=self._checkpoints.times()[index],
            sealed_read=1,
            live_partial=0,
            error_bound=self.eps,
        )
        return base

    def memory_bytes(self) -> int:
        """Sum of snapshot sizes (via each snapshot's ``memory_bytes``) plus
        the live sketch and a chain entry (timestamp + snapshot pointer)
        per checkpoint."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        snapshots = sum(snap.memory_bytes() for _, snap in self._checkpoints)
        return {
            "live_sketch": self.live.memory_bytes(),
            "checkpoint_snapshots": snapshots,
            "chain_entries": len(self._checkpoints) * CHECKPOINT_ENTRY_BYTES,
        }

    def space_bound_bytes(self) -> int:
        """Lemma 4.1 bound at the current stream position: the live sketch
        plus ``O(log_{1+eps} W)`` checkpoints of (modelled) equal size."""
        live = self.live.memory_bytes()
        if self.total_weight <= 1.0:
            return live + (live + CHECKPOINT_ENTRY_BYTES) * min(1, self.count)
        checkpoints = 1 + math.ceil(
            math.log(self.total_weight) / math.log(1.0 + self.eps)
        )
        return live + checkpoints * (live + CHECKPOINT_ENTRY_BYTES)


def apply_weighted(target: Any, value: Any, weight: float) -> None:
    """Standard apply for sketches with ``update(value, weight)``."""
    target.update(value, weight)


def apply_unweighted(target: Any, value: Any, weight: float) -> None:
    """Apply for single-argument sketches; rejects non-unit weights."""
    if weight != 1.0:
        raise ValueError(
            f"{type(target).__name__}.update takes no weight; got weight={weight}"
        )
    target.update(value)


def apply_value_only(target: Any, value: Any, weight: float) -> None:
    """Apply that drops the weight (e.g. matrix rows into FD sketches)."""
    target.update(value)


def apply_int_weighted(target: Any, value: Any, weight: float) -> None:
    """Apply for integer-count sketches (e.g. Misra-Gries)."""
    target.update(value, int(weight))


def _resolve_apply(sketch: Any) -> Callable:
    """Pick the update convention once, from the sketch's signature.

    Sketches with a two-argument ``update(value, weight)`` receive the weight;
    single-argument ones (e.g. KLL) must only be fed unit weights.  The
    returned functions are module-level so chains stay picklable.
    """
    params = list(inspect.signature(sketch.update).parameters.values())
    if len(params) >= 2:
        return apply_weighted
    return apply_unweighted


def apply_batch_weighted(target: Any, values, weights) -> None:
    """Batch apply for sketches with ``update_batch(values, weights)``."""
    target.update_batch(values, weights)


def apply_batch_unweighted(target: Any, values, weights) -> None:
    """Batch apply for value-only sketches; rejects non-unit weights."""
    if weights is not None and np.any(np.asarray(weights) != 1.0):
        raise ValueError(
            f"{type(target).__name__}.update takes no weight; "
            f"got a batch with non-unit weights"
        )
    target.update_batch(values)


def apply_batch_value_only(target: Any, values, weights) -> None:
    """Batch apply that drops the weights (e.g. keys into Bloom filters)."""
    target.update_batch(values)


def apply_batch_int_weighted(target: Any, values, weights) -> None:
    """Batch apply for integer-count sketches (e.g. Misra-Gries)."""
    if weights is None:
        target.update_batch(values)
    else:
        target.update_batch(values, np.asarray(weights, dtype=np.int64))


_BATCH_APPLY = {
    apply_weighted: apply_batch_weighted,
    apply_unweighted: apply_batch_unweighted,
    apply_value_only: apply_batch_value_only,
    apply_int_weighted: apply_batch_int_weighted,
}


def resolve_apply_batch(sketch: Any, apply_update: Callable) -> Optional[Callable]:
    """The batch counterpart of a scalar apply convention, if one exists.

    Returns None — meaning "loop the scalar apply" — when the base sketch has
    no ``update_batch`` or the scalar apply is a custom callable we cannot
    translate.  Module-level returns keep chains picklable.
    """
    if getattr(type(sketch), "update_batch", None) is None:
        return None
    return _BATCH_APPLY.get(apply_update)
