"""Interval index for persistent-sample queries (Section 3, "Queries").

A persistent sample holds records with lifetimes ``[birth, death)``.  The
naive ``sample_at(t)`` scans all ``O(k log n)`` records; the paper notes the
active records can be indexed as intervals and queried in
``O(k + log k log log n)`` time.  This module implements a static interval
tree (centered / Edelsbrunner-style) built once over the records, answering
stabbing queries in ``O(log m + answer)`` time.

Build it lazily after the stream (or rebuild on demand); persistent samplers
expose it through ``build_interval_index()`` / indexed ``sample_at``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

_INF = float("inf")


class _CenterNode:
    __slots__ = ("center", "by_start", "by_end", "left", "right")

    def __init__(self, center: float):
        self.center = center
        # Intervals containing `center`, sorted two ways for one-sided scans.
        self.by_start: List[Tuple[float, Any]] = []
        self.by_end: List[Tuple[float, Any]] = []
        self.left: Optional[_CenterNode] = None
        self.right: Optional[_CenterNode] = None


class IntervalIndex:
    """Static centered interval tree over ``(start, end, payload)`` triples.

    Intervals are half-open ``[start, end)``; ``end`` may be ``None`` /
    ``inf`` for still-alive records.  ``stab(t)`` returns the payloads of all
    intervals containing ``t``.
    """

    def __init__(self, intervals: Sequence[Tuple[float, Optional[float], Any]]):
        normalized = [
            (start, _INF if end is None else end, payload)
            for start, end, payload in intervals
        ]
        for start, end, _ in normalized:
            if end <= start:
                raise ValueError(f"empty interval [{start}, {end})")
        self._size = len(normalized)
        self._root = self._build(normalized)

    def _build(self, intervals: List[Tuple[float, float, Any]]) -> Optional[_CenterNode]:
        if not intervals:
            return None
        endpoints = sorted(
            {start for start, _, _ in intervals}
            | {end for _, end, _ in intervals if end is not _INF}
        )
        if not endpoints:
            endpoints = [0.0]
        # Lower median: guarantees both recursive sides strictly shrink
        # (no interval can end at or before the minimum endpoint).
        center = endpoints[(len(endpoints) - 1) // 2]
        node = _CenterNode(center)
        left_side, right_side = [], []
        containing = []
        for interval in intervals:
            start, end, _ = interval
            if end <= center:
                left_side.append(interval)
            elif start > center:
                right_side.append(interval)
            else:
                containing.append(interval)
        node.by_start = sorted(
            ((start, payload) for start, _, payload in containing),
            key=lambda pair: pair[0],
        )
        node.by_end = sorted(
            ((end, payload) for _, end, payload in containing),
            key=lambda pair: pair[0],
        )
        node.left = self._build(left_side)
        node.right = self._build(right_side)
        return node

    def stab(self, t: float) -> List[Any]:
        """Payloads of all intervals with ``start <= t < end``."""
        out: List[Any] = []
        node = self._root
        while node is not None:
            if t < node.center:
                # Containing intervals qualify iff start <= t.
                for start, payload in node.by_start:
                    if start > t:
                        break
                    out.append(payload)
                node = node.left
            elif t > node.center:
                # Containing intervals qualify iff end > t; scan largest-end
                # first.
                for end, payload in reversed(node.by_end):
                    if end <= t:
                        break
                    out.append(payload)
                node = node.right
            else:
                # t == center: exactly the containing intervals cover it —
                # left-subtree intervals end at or before the (half-open)
                # center and right-subtree ones start strictly after it.
                out.extend(payload for _, payload in node.by_start)
                break
        return out

    def __len__(self) -> int:
        return self._size

    def memory_bytes(self) -> int:
        """Two 8-byte endpoints + 4-byte payload ref per interval, x2 lists."""
        return self._size * 40
