"""ATTP persistent *weighted* random samples (Section 3.1 of the paper).

* :class:`PersistentPrioritySample` — priority sampling (Duffield et al.)
  made persistent: item ``a_i`` with weight ``w_i`` gets priority
  ``q_i = w_i / u_i``; the top-``k`` priorities of any prefix form a weighted
  without-replacement sample.  Displaced records are death-marked.  The
  reweighting threshold ``tau(t)`` (the (k+1)-th largest priority of the
  prefix) is itself monotone in ``t`` and is recorded as a small history, so
  historical subset-sum estimates stay unbiased.  Theorem 3.2 bounds the
  records by ``O(k (log n + log U))`` for U-bounded weights.

* :class:`PersistentWeightedWR` — ``k`` independent weighted
  with-replacement chains (replace with probability ``w_i / W_i``), the
  construction analysed in Lemma 3.2.  This is the paper's NSWR when weights
  are squared row norms.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import Any, Callable, List

import numpy as np

from repro.core.base import (
    TimestampGuard,
    check_batch_lengths,
    check_positive_weight,
    first_invalid_weight,
    first_timestamp_violation,
)
from repro.core.persistent_sampling import SampleRecord
from repro.core.timeindex import GeometricHistory, History
from repro.evaluation.memory import (
    FLOAT_BYTES,
    HEAP_ENTRY_BYTES,
    LOG_ROW_BYTES,
    PLA_BREAKPOINT_BYTES,
    WEIGHTED_SAMPLE_RECORD_BYTES,
)
from repro.telemetry.registry import TELEMETRY as _TEL, timed

# RNG stream salts (see PersistentTopKSample for rationale).
_RNG_SALT_PRIORITY = 103
_RNG_SALT_WEIGHTED_WR = 104

#: Weighted with-replacement chain record: id + birth + weight.
_WR_RECORD_BYTES = LOG_ROW_BYTES + FLOAT_BYTES  # = 20

_PRIORITY_UPDATES = _TEL.counter(
    "persistent_updates_total",
    "Stream items applied to a persistent structure, by structure.",
    structure="persistent_priority",
)
_PRIORITY_RECORDS = _TEL.counter(
    "sampler_records_total",
    "Persistent sample records created (live + death-marked), by sampler.",
    sampler="persistent_priority",
)
_PRIORITY_QUERY = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="persistent_priority",
    op="sample_at",
)
_WWR_UPDATES = _TEL.counter(
    "persistent_updates_total",
    "Stream items applied to a persistent structure, by structure.",
    structure="persistent_weighted_wr",
)
_WWR_RECORDS = _TEL.counter(
    "sampler_records_total",
    "Persistent sample records created (live + death-marked), by sampler.",
    sampler="persistent_weighted_wr",
)
_WWR_QUERY = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="persistent_weighted_wr",
    op="sample_at",
)


class PersistentPrioritySample:
    """ATTP weighted without-replacement sample of size ``k``."""

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = np.random.default_rng([seed, _RNG_SALT_PRIORITY])
        self._guard = TimestampGuard()
        self._records: List[SampleRecord] = []
        self._birth_times: List[float] = []
        self._weights: List[float] = []  # parallel to _records
        self._heap: List[tuple] = []  # (priority, record index) min-heap of live
        # tau(t): (k+1)-th largest priority of the prefix at t; non-decreasing.
        self._tau_history = History()
        self._tau = 0.0
        self._interval_index = None
        self._records_at_index_build = -1
        self.count = 0
        self.total_weight = 0.0

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> None:
        """Offer one stream item with positive weight."""
        check_positive_weight(weight)
        self._guard.check(timestamp)
        self.count += 1
        self.total_weight += weight
        if _TEL.enabled:
            _PRIORITY_UPDATES.inc()
        u = float(self._rng.random())
        while u == 0.0:
            u = float(self._rng.random())
        self._offer(value, timestamp, weight, weight / u)

    def update_batch(self, values, timestamps, weights=None) -> None:
        """Offer a batch; state- and RNG-identical to the scalar loop.

        Weights and timestamps are validated vectorised, then the uniforms
        for the valid prefix come from one ``Generator.random`` call (same
        PCG64 consumption as per-item draws; the astronomically rare
        ``u == 0`` redraw falls back to scalar draws).  A mid-batch weight
        or timestamp violation applies the prefix before it and raises, in
        the scalar check order.
        """
        n = check_batch_lengths(values, timestamps, weights)
        if n == 0:
            return
        timestamp_array = np.asarray(timestamps, dtype=float)
        weight_array = (
            np.ones(n, dtype=float)
            if weights is None
            else np.asarray(weights, dtype=float)
        )
        bad_weight = first_invalid_weight(weight_array)
        bad_time = first_timestamp_violation(self._guard.last, timestamp_array)
        candidates = [index for index in (bad_weight, bad_time) if index >= 0]
        bad = min(candidates) if candidates else -1
        limit = n if bad < 0 else bad
        if limit:
            uniforms = self._rng.random(limit)
            if uniforms.min() == 0.0:
                # Astronomically rare: scalar loop so the per-zero redraws
                # consume the RNG exactly as update() would.
                offer = self._offer
                for index in range(limit):
                    weight = float(weight_array[index])
                    u = float(uniforms[index])
                    while u == 0.0:
                        u = float(self._rng.random())
                    self.count += 1
                    self.total_weight += weight
                    offer(
                        values[index],
                        float(timestamp_array[index]),
                        weight,
                        weight / u,
                    )
            else:
                self._apply_offers(
                    values,
                    timestamp_array,
                    weight_array,
                    weight_array[:limit] / uniforms,
                    limit,
                )
                self.count += limit
                # Same sequential left fold (and rounding) as `total += w`.
                self.total_weight = float(
                    np.add.accumulate(
                        np.concatenate(((self.total_weight,), weight_array[:limit]))
                    )[-1]
                )
            self._guard.last = float(timestamp_array[limit - 1])
            if _TEL.enabled:
                _PRIORITY_UPDATES.inc(limit)
        if bad >= 0:
            # Reproduce the scalar error, in the scalar check order.
            check_positive_weight(float(weight_array[bad]))
            self._guard.check(float(timestamp_array[bad]))
            raise AssertionError("unreachable: batch validation found no violation")

    def _apply_offers(
        self, values, timestamp_array, weight_array, priorities, limit
    ) -> None:
        """Offer ``limit`` items with precomputed priorities, in order.

        While the heap is full the acceptance threshold ``heap[0][0]`` only
        rises, so the indices above the *window-start* threshold are a
        superset of the true accepts; each is re-checked against the live
        threshold.  Everything between accepts is a rejected run whose only
        side effect is the tau note, applied span-wise (and exactly) by
        :meth:`_note_tau_span`.
        """
        heap = self._heap
        offer = self._offer
        position = 0
        # cold start: per-item offers until the heap holds k records
        while position < limit and len(heap) < self.k:
            offer(
                values[position],
                float(timestamp_array[position]),
                float(weight_array[position]),
                float(priorities[position]),
            )
            position += 1
        while position < limit:
            window_end = min(position + 4096, limit)
            candidates = np.nonzero(priorities[position:window_end] > heap[0][0])[0]
            span_start = position
            for relative in candidates.tolist():
                index = position + relative
                priority = float(priorities[index])
                if priority > heap[0][0]:
                    self._note_tau_span(timestamp_array, priorities, span_start, index)
                    offer(
                        values[index],
                        float(timestamp_array[index]),
                        float(weight_array[index]),
                        priority,
                    )
                    span_start = index + 1
                # else: the threshold rose past it — a rejection, covered
                # by the span flushed at the next accept (or window end).
            self._note_tau_span(timestamp_array, priorities, span_start, window_end)
            position = window_end

    def _note_tau_span(self, timestamp_array, priorities, start, stop) -> None:
        """Tau side effects of a contiguous run of rejected offers.

        Matches the per-item :meth:`_note_tau` calls exactly: each rejected
        priority above the running threshold becomes the new tau and is
        recorded in the history, in stream order.
        """
        if start >= stop:
            return
        segment = priorities[start:stop]
        tau = self._tau
        if float(segment.max()) <= tau:
            return
        running = np.maximum.accumulate(np.concatenate(((tau,), segment)))[:-1]
        for relative in np.nonzero(segment > running)[0].tolist():
            priority = float(segment[relative])
            self._tau = priority
            self._tau_history.append(float(timestamp_array[start + relative]), priority)

    def _offer(self, value: Any, timestamp: float, weight: float, priority: float) -> None:
        heap = self._heap
        if len(heap) >= self.k and priority <= heap[0][0]:
            # Rejected, but it may still raise the (k+1)-th largest priority.
            self._note_tau(timestamp, priority)
            return
        record = SampleRecord(value=value, priority=priority, birth=timestamp)
        index = len(self._records)
        self._records.append(record)
        if _TEL.enabled:
            _PRIORITY_RECORDS.inc()
        self._birth_times.append(timestamp)
        self._weights.append(weight)
        if len(heap) < self.k:
            heapq.heappush(heap, (priority, index))
        else:
            evicted_priority, evicted = heapq.heapreplace(heap, (priority, index))
            self._records[evicted].death = timestamp
            self._note_tau(timestamp, evicted_priority)

    def _note_tau(self, timestamp: float, candidate: float) -> None:
        if candidate > self._tau:
            self._tau = candidate
            self._tau_history.append(timestamp, candidate)

    def tau_at(self, timestamp: float) -> float:
        """Reweighting threshold: (k+1)-th largest priority of ``A^timestamp``."""
        return self._tau_history.value_at(timestamp, default=0.0)

    @timed(_PRIORITY_QUERY)
    def sample_at(self, timestamp: float) -> list:
        """``(value, adjusted_weight)`` pairs sampled from ``A^timestamp``.

        Adjusted weight is ``max(w_i, tau(t))``, making subset-sum estimates
        unbiased for the prefix.  Served from the interval index when one is
        current (see :meth:`build_interval_index`).
        """
        tau = self.tau_at(timestamp)
        interval_index = self._interval_index
        if (
            interval_index is not None
            and self._records_at_index_build == len(self._records)
        ):
            return [
                (self._records[i].value, max(self._weights[i], tau))
                for i in interval_index.stab(timestamp)
            ]
        end = bisect.bisect_right(self._birth_times, timestamp)
        return [
            (record.value, max(self._weights[index], tau))
            for index, record in enumerate(self._records[:end])
            if record.alive_at(timestamp)
        ]

    def build_interval_index(self) -> None:
        """Index record lifetimes for fast historical queries (Section 3).

        Static: serves queries until the next update, after which queries
        fall back to the scan until rebuilt.  Payloads are record indices so
        adjusted weights can still be computed per query time.
        """
        from repro.core.interval_index import IntervalIndex

        self._interval_index = IntervalIndex(
            [
                (record.birth, record.death, i)
                for i, record in enumerate(self._records)
                if record.death is None or record.death > record.birth
            ]
        )
        self._records_at_index_build = len(self._records)

    def raw_sample_at(self, timestamp: float) -> list:
        """``(value, original_weight)`` pairs sampled from ``A^timestamp``."""
        end = bisect.bisect_right(self._birth_times, timestamp)
        return [
            (record.value, self._weights[index])
            for index, record in enumerate(self._records[:end])
            if record.alive_at(timestamp)
        ]

    def estimate_subset_sum_at(self, timestamp: float, predicate: Callable) -> float:
        """Unbiased estimate of the matching total weight in ``A^timestamp``."""
        return sum(w for value, w in self.sample_at(timestamp) if predicate(value))

    def records(self) -> List[SampleRecord]:
        """All records ever kept."""
        return self._records

    def memory_bytes(self) -> int:
        """Record: id(4)+priority(8)+weight(8)+2 times(16); tau entry: 16;
        live heap entry: priority(8)+index(4)."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        return {
            "records": len(self._records) * WEIGHTED_SAMPLE_RECORD_BYTES,
            "tau_history": len(self._tau_history) * PLA_BREAKPOINT_BYTES,
            "live_heap": len(self._heap) * HEAP_ENTRY_BYTES,
        }

    def space_bound_bytes(self) -> int:
        """Theorem 3.2 bound: ``O(k (log n + log U))`` records (with the tau
        history bounded by the evictions) plus the live ``k``-entry heap."""
        heap = self.k * HEAP_ENTRY_BYTES
        if self.count == 0:
            return heap
        log_n = math.log(self.count) if self.count > 1 else 0.0
        log_u = max(0.0, math.log(max(self.total_weight, 1.0)))
        bound_records = self.k * (1 + math.ceil(log_n + log_u))
        per_record = WEIGHTED_SAMPLE_RECORD_BYTES + PLA_BREAKPOINT_BYTES
        return bound_records * per_record + heap

    def __len__(self) -> int:
        return len(self._records)


class PersistentWeightedWR:
    """ATTP weighted with-replacement sample via ``k`` persistent chains."""

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = np.random.default_rng([seed, _RNG_SALT_WEIGHTED_WR])
        self._guard = TimestampGuard()
        self._births: List[List[float]] = [[] for _ in range(k)]
        self._values: List[List[Any]] = [[] for _ in range(k)]
        self._chain_weights: List[List[float]] = [[] for _ in range(k)]
        # Total-weight history so estimates can scale by W(t); geometric
        # checkpointing keeps it at O(log W) entries.
        self._weight_history = GeometricHistory(delta=0.01)
        self.count = 0
        self.total_weight = 0.0

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> None:
        """Offer one stream item with positive weight to every chain."""
        check_positive_weight(weight)
        self._guard.check(timestamp)
        self.count += 1
        self.total_weight += weight
        self._weight_history.observe(timestamp, self.total_weight)
        p = weight / self.total_weight
        if p >= 1.0:
            hits = range(self.k)
        else:
            hits = np.flatnonzero(self._rng.random(self.k) < p)
        if _TEL.enabled:
            _WWR_UPDATES.inc()
            _WWR_RECORDS.inc(len(hits))
        for chain in hits:
            self._births[chain].append(timestamp)
            self._values[chain].append(value)
            self._chain_weights[chain].append(weight)

    def update_batch(self, values, timestamps, weights=None) -> None:
        """Offer a batch; state- and RNG-identical to the scalar loop.

        Running totals accumulate in scalar order (and feed the W(t)
        history per item); the per-item ``k`` uniforms for the valid prefix
        are drawn as one ``(m, k)`` matrix, consuming the PCG64 stream like
        ``m`` sequential ``random(k)`` calls.  Only the very first stream
        item can hit the ``p >= 1`` no-draw branch, handled separately.  A
        mid-batch weight or timestamp violation applies the prefix before
        it and raises, in the scalar check order.
        """
        n = check_batch_lengths(values, timestamps, weights)
        if n == 0:
            return
        timestamp_array = np.asarray(timestamps, dtype=float)
        weight_array = (
            np.ones(n, dtype=float)
            if weights is None
            else np.asarray(weights, dtype=float)
        )
        bad_weight = first_invalid_weight(weight_array)
        bad_time = first_timestamp_violation(self._guard.last, timestamp_array)
        candidates = [index for index in (bad_weight, bad_time) if index >= 0]
        bad = min(candidates) if candidates else -1
        limit = n if bad < 0 else bad
        start = 0
        if limit and self.count == 0:
            # First stream item: p = w/W = 1, every chain takes it, no draw.
            first_weight = float(weight_array[0])
            first_timestamp = float(timestamp_array[0])
            self.count = 1
            self.total_weight += first_weight
            self._weight_history.observe(first_timestamp, self.total_weight)
            for chain in range(self.k):
                self._births[chain].append(first_timestamp)
                self._values[chain].append(values[0])
                self._chain_weights[chain].append(first_weight)
            if _TEL.enabled:
                _WWR_RECORDS.inc(self.k)
            start = 1
        remaining = limit - start
        if remaining > 0:
            # Scalar-order accumulation keeps totals bit-identical to the loop.
            probabilities = np.empty(remaining)
            total = self.total_weight
            for j in range(remaining):
                item_weight = float(weight_array[start + j])
                total += item_weight
                probabilities[j] = item_weight / total
                self._weight_history.observe(
                    float(timestamp_array[start + j]), total
                )
            self.total_weight = total
            self.count += remaining
            draws = self._rng.random((remaining, self.k))
            rows, chains = np.nonzero(draws < probabilities[:, None])
            if _TEL.enabled:
                _WWR_RECORDS.inc(int(rows.size))
            for row, chain in zip(rows.tolist(), chains.tolist()):
                self._births[chain].append(float(timestamp_array[start + row]))
                self._values[chain].append(values[start + row])
                self._chain_weights[chain].append(float(weight_array[start + row]))
        if limit:
            self._guard.last = float(timestamp_array[limit - 1])
            if _TEL.enabled:
                _WWR_UPDATES.inc(limit)
        if bad >= 0:
            # Reproduce the scalar error, in the scalar check order.
            check_positive_weight(float(weight_array[bad]))
            self._guard.check(float(timestamp_array[bad]))
            raise AssertionError("unreachable: batch validation found no violation")

    def total_weight_at(self, timestamp: float) -> float:
        """W(t): total stream weight at or before ``timestamp``."""
        return self._weight_history.value_at(timestamp)

    @timed(_WWR_QUERY)
    def sample_at(self, timestamp: float) -> list:
        """``(value, weight)`` with-replacement weighted sample of ``A^timestamp``."""
        out = []
        for chain in range(self.k):
            idx = bisect.bisect_right(self._births[chain], timestamp) - 1
            if idx >= 0:
                out.append((self._values[chain][idx], self._chain_weights[chain][idx]))
        return out

    def estimate_subset_sum_at(self, timestamp: float, predicate: Callable) -> float:
        """Estimate matching weight in ``A^timestamp``: ``W(t) * hits / k``."""
        sample = self.sample_at(timestamp)
        if not sample:
            return 0.0
        hits = sum(1 for value, _ in sample if predicate(value))
        return self.total_weight_at(timestamp) * hits / len(sample)

    def total_records(self) -> int:
        """Number of records ever kept across chains (Lemma 3.2 bound)."""
        return sum(len(births) for births in self._births)

    def memory_bytes(self) -> int:
        """Record: id(4)+birth(8)+weight(8), plus the W(t) checkpoint history."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        return {
            "records": self.total_records() * _WR_RECORD_BYTES,
            "weight_history": self._weight_history.memory_bytes(),
        }

    def space_bound_bytes(self) -> int:
        """Lemma 3.2 bound: each chain keeps ``O(log W)`` expected records,
        plus the geometric W(t) history."""
        history = self._weight_history.memory_bytes()
        if self.count == 0:
            return history
        log_w = max(0.0, math.log(max(self.total_weight, 1.0)))
        bound_records = self.k * (1 + math.ceil(log_w))
        return bound_records * _WR_RECORD_BYTES + history

    def __len__(self) -> int:
        return self.total_records()
