"""Dyadic merge-tree persistence for mergeable sketches (Section 5, Thm 5.1).

Decompose the stream into dyadic intervals over fixed-size leaf blocks.  The
streaming "binary counter" maintains one complete subtree sketch per power-of
two size (the *spine*).  When two equal-size subtrees merge into their
parent, the children become historical nodes; we *retain* a child iff it is
within depth ``log(1/eps)`` of the relevant spine:

* **ATTP** — retain node ``[a, b)`` iff ``b - a >= (eps/2) * a`` (close to
  the *left* spine).  The rule is static, decided once at merge time.
* **BITP** — retain node ``[a, b)`` while ``b - a >= (eps/2) * (n - b)``
  (close to the *right* spine).  The rule decays as the stream grows, so
  nodes are pruned lazily.

A prefix query at time ``t`` greedily covers ``[0, m)`` (``m`` = items at or
before ``t``) with the largest available nodes left-to-right and merges their
sketches; the first unavailable node is smaller than ``(eps/2) m``, so the
uncovered tail is below ``eps * m`` — an ``eps``-additive answer for any
mergeable sketch, with total space ``O(s(1/eps) * (1/eps) * log n)``.
Suffix (BITP) queries run the same cover right-to-left from ``n``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

import numpy as np

from repro.core.base import (
    TimestampGuard,
    check_batch_lengths,
    first_timestamp_violation,
)
from repro.telemetry.registry import TELEMETRY as _TEL, timed

_NODE_OVERHEAD_BYTES = 32  # start, end indices + two timestamps

_UPDATES = _TEL.counter(
    "persistent_updates_total",
    "Stream items applied to a persistent structure, by structure.",
    structure="merge_tree",
)
_BLOCK_SEALS = _TEL.counter(
    "merge_tree_block_seals_total",
    "Leaf blocks sealed into the merge tree.",
)
_CARRY_MERGES = _TEL.counter(
    "merge_tree_carry_merges_total",
    "Equal-size spine merges performed by the binary-counter carry.",
)
_NODES_PRUNED = _TEL.counter(
    "merge_tree_nodes_pruned_total",
    "Retained nodes dropped by the BITP decay rule.",
)
_QUERY_AT = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="merge_tree",
    op="sketch_at",
)
_QUERY_SINCE = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="merge_tree",
    op="sketch_since",
)


@dataclass
class _Node:
    start: int  # item index, inclusive
    end: int  # item index, exclusive
    t_start: float
    t_end: float
    sketch: Any

    @property
    def size(self) -> int:
        return self.end - self.start


class MergeTreePersistence:
    """Generic ATTP/BITP persistence over any mergeable sketch.

    Parameters
    ----------
    sketch_factory:
        Builds an empty mergeable sketch (``update``, ``merge``,
        ``memory_bytes``).
    eps:
        Coverage slack: queries may ignore up to an ``eps`` fraction of the
        queried range (the persistence error — the base sketch's own error
        comes on top).
    mode:
        ``"attp"`` for prefix queries, ``"bitp"`` for suffix queries.
    block_size:
        Items per leaf block; granularity of query boundaries.
    apply_update:
        ``(sketch, value, weight) -> None`` override, as in CheckpointChain.
    """

    def __init__(
        self,
        sketch_factory: Callable[[], Any],
        eps: float,
        mode: str = "attp",
        block_size: int = 64,
        apply_update: Optional[Callable] = None,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        if mode not in ("attp", "bitp"):
            raise ValueError(f"mode must be 'attp' or 'bitp', got {mode!r}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.eps = eps
        self.mode = mode
        self.block_size = block_size
        self._factory = sketch_factory
        probe = sketch_factory()
        self._apply = apply_update or _resolve_apply(probe)
        self._apply_batch = _resolve_apply_batch(probe, self._apply)
        self._guard = TimestampGuard()
        self._spine: List[_Node] = []  # strictly decreasing power-of-2 sizes
        self._retained: List[_Node] = []
        self._block_sketch = sketch_factory()
        self._block_start = 0
        self._block_t_start: Optional[float] = None
        self._block_t_end: Optional[float] = None
        self._block_count = 0
        self.count = 0
        self.peak_memory_bytes = 0

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> None:
        """Feed one stream item."""
        self._guard.check(timestamp)
        if self._block_count == 0:
            self._block_t_start = timestamp
        self._apply(self._block_sketch, value, weight)
        self._block_t_end = timestamp
        self._block_count += 1
        self.count += 1
        if _TEL.enabled:
            _UPDATES.inc()
        if self._block_count == self.block_size:
            self._seal_block()
            # Peak tracking at block boundaries: between seals the only
            # growth is inside the live block, which the next seal captures.
            size = self.memory_bytes()
            if size > self.peak_memory_bytes:
                self.peak_memory_bytes = size

    def update_batch(self, values, timestamps, weights=None) -> None:
        """Feed one batch; block-exact vs the scalar loop.

        Fills the live leaf block in chunks of its remaining capacity,
        sealing (and carrying up the spine) at exactly the item positions
        the scalar path would — each chunk goes through the block sketch's
        vectorized ``update_batch`` when it has one.  A mid-batch timestamp
        violation applies the prefix before it and raises, exactly like the
        scalar loop.
        """
        n = check_batch_lengths(values, timestamps, weights)
        if n == 0:
            return
        timestamp_array = np.asarray(timestamps, dtype=float)
        weight_array = None if weights is None else np.asarray(weights, dtype=float)
        bad = first_timestamp_violation(self._guard.last, timestamp_array)
        if bad >= 0:
            if bad:
                self.update_batch(
                    values[:bad],
                    timestamp_array[:bad],
                    None if weight_array is None else weight_array[:bad],
                )
            self._guard.check(float(timestamp_array[bad]))  # raises
            raise AssertionError("unreachable: batch validation found no violation")
        position = 0
        while position < n:
            end = min(n, position + self.block_size - self._block_count)
            if self._block_count == 0:
                self._block_t_start = float(timestamp_array[position])
            self._guard.last = float(timestamp_array[end - 1])
            if self._apply_batch is not None:
                self._apply_batch(
                    self._block_sketch,
                    values[position:end],
                    None if weight_array is None else weight_array[position:end],
                )
            elif weight_array is None:
                for i in range(position, end):
                    self._apply(self._block_sketch, values[i], 1.0)
            else:
                for i in range(position, end):
                    self._apply(self._block_sketch, values[i], float(weight_array[i]))
            self._block_t_end = float(timestamp_array[end - 1])
            self._block_count += end - position
            self.count += end - position
            if _TEL.enabled:
                _UPDATES.inc(end - position)
            position = end
            if self._block_count == self.block_size:
                self._seal_block()
                size = self.memory_bytes()
                if size > self.peak_memory_bytes:
                    self.peak_memory_bytes = size

    def _seal_block(self) -> None:
        node = _Node(
            start=self._block_start,
            end=self._block_start + self._block_count,
            t_start=self._block_t_start,
            t_end=self._block_t_end,
            sketch=self._block_sketch,
        )
        self._block_start = node.end
        self._block_sketch = self._factory()
        self._block_t_start = None
        self._block_t_end = None
        self._block_count = 0
        self._spine.append(node)
        if _TEL.enabled:
            _BLOCK_SEALS.inc()
        self._carry()

    def _carry(self) -> None:
        spine = self._spine
        while len(spine) >= 2 and spine[-1].size == spine[-2].size:
            right = spine.pop()
            left = spine.pop()
            parent_sketch = copy.deepcopy(left.sketch)
            parent_sketch.merge(right.sketch)
            parent = _Node(
                start=left.start,
                end=right.end,
                t_start=left.t_start,
                t_end=right.t_end,
                sketch=parent_sketch,
            )
            for child in (left, right):
                if self._retain_rule(child):
                    self._retained.append(child)
            spine.append(parent)
            if _TEL.enabled:
                _CARRY_MERGES.inc()
        if self.mode == "bitp":
            self._prune_retained()

    def _retain_rule(self, node: _Node) -> bool:
        if self.mode == "attp":
            return node.size >= (self.eps / 2.0) * node.start
        return node.size >= (self.eps / 2.0) * (self.count - node.end)

    def _prune_retained(self) -> None:
        before = len(self._retained)
        self._retained = [node for node in self._retained if self._retain_rule(node)]
        if _TEL.enabled and before > len(self._retained):
            _NODES_PRUNED.inc(before - len(self._retained))

    def _candidates(self) -> List[_Node]:
        return self._spine + self._retained

    def _cover_at(self, timestamp: float):
        """The ATTP greedy cover: ``(nodes, include_live)``.

        ``nodes`` is the left-to-right largest-available cover of the
        prefix; ``include_live`` says whether the live partial block sits
        exactly at the cover's end and is fully inside the prefix.  Both
        :meth:`sketch_at` (which merges) and :meth:`plan_at` (which only
        reports) read this one cover, so plans are faithful by
        construction.
        """
        usable = [node for node in self._candidates() if node.t_end <= timestamp]
        by_start: dict = {}
        for node in usable:
            best = by_start.get(node.start)
            if best is None or node.size > best.size:
                by_start[node.start] = node
        nodes: List[_Node] = []
        position = 0
        while position in by_start:
            node = by_start[position]
            nodes.append(node)
            position = node.end
        include_live = (
            position == self._block_start
            and self._block_count > 0
            and self._block_t_end is not None
            and self._block_t_end <= timestamp
        )
        return nodes, include_live

    def _cover_since(self, timestamp: float):
        """The BITP cover: ``(include_live, nodes, boundary)``.

        ``include_live`` — the live partial block holds window items (it is
        always the newest part of any window, included even when the window
        start falls inside it); ``nodes`` — the right-to-left
        largest-available walk back from the sealed edge; ``boundary`` — the
        straddling leaf at the window's old edge, or None.  Shared by
        :meth:`sketch_since` and :meth:`plan_since`.
        """
        usable = [node for node in self._candidates() if node.t_start >= timestamp]
        by_end: dict = {}
        for node in usable:
            best = by_end.get(node.end)
            if best is None or node.size > best.size:
                by_end[node.end] = node
        include_live = (
            self._block_count > 0
            and self._block_t_end is not None
            and self._block_t_end >= timestamp
        )
        nodes: List[_Node] = []
        position = self._block_start
        while position in by_end:
            node = by_end[position]
            nodes.append(node)
            position = node.start
        # Block granularity at the window's old edge: when the cover stops at
        # a leaf that straddles the window start, include it — this overcounts
        # by at most one block and keeps sub-block windows answerable.
        boundary = self._smallest_node_ending_at(position)
        if boundary is not None and not (
            boundary.size <= self.block_size
            and boundary.t_end >= timestamp > boundary.t_start
        ):
            boundary = None
        return include_live, nodes, boundary

    @timed(_QUERY_AT)
    def sketch_at(self, timestamp: float) -> Any:
        """ATTP query: merged sketch covering (almost all of) ``A^timestamp``."""
        if self.mode != "attp":
            raise RuntimeError("sketch_at is only available in ATTP mode")
        nodes, include_live = self._cover_at(timestamp)
        result = None
        for node in nodes:
            if result is None:
                result = copy.deepcopy(node.sketch)
            else:
                result.merge(node.sketch)
        # Include the live partial block when it is fully inside the prefix.
        if include_live:
            if result is None:
                result = copy.deepcopy(self._block_sketch)
            else:
                result.merge(self._block_sketch)
        if result is None:
            result = self._factory()
        return result

    @timed(_QUERY_SINCE)
    def sketch_since(self, timestamp: float) -> Any:
        """BITP query: merged sketch covering (almost all of) ``A[timestamp, now]``."""
        if self.mode != "bitp":
            raise RuntimeError("sketch_since is only available in BITP mode")
        include_live, nodes, boundary = self._cover_since(timestamp)
        result = None
        if include_live:
            result = copy.deepcopy(self._block_sketch)
        for node in nodes:
            if result is None:
                result = copy.deepcopy(node.sketch)
            else:
                result.merge(node.sketch)
        if boundary is not None:
            if result is None:
                result = copy.deepcopy(boundary.sketch)
            else:
                result.merge(boundary.sketch)
        if result is None:
            result = self._factory()
        return result

    @staticmethod
    def _node_meta(node: _Node) -> dict:
        return {
            "start": node.start,
            "end": node.end,
            "size": node.size,
            "t_start": node.t_start,
            "t_end": node.t_end,
        }

    def plan_at(self, timestamp: float) -> dict:
        """Explain :meth:`sketch_at`: the exact blocks it would merge.

        Reads the same greedy cover as the query itself and reports each
        covering node's index range and timestamps, sealed vs. live-partial
        counts, the stored-node total, and the coverage error bound
        (``eps``, the fraction of the prefix the cover may miss).
        """
        if self.mode != "attp":
            raise RuntimeError("plan_at is only available in ATTP mode")
        nodes, include_live = self._cover_at(timestamp)
        covered = sum(node.size for node in nodes)
        if include_live:
            covered += self._block_count
        return {
            "structure": "merge_tree",
            "mode": self.mode,
            "blocks": [self._node_meta(node) for node in nodes],
            "sealed_read": len(nodes),
            "live_partial": 1 if include_live else 0,
            "covered_items": covered,
            "nodes_stored": self.num_nodes(),
            "block_size": self.block_size,
            "error_bound": self.eps,
        }

    def plan_since(self, timestamp: float) -> dict:
        """Explain :meth:`sketch_since`: the exact blocks it would merge.

        Like :meth:`plan_at` for the BITP suffix cover; ``boundary`` is the
        straddling leaf included at the window's old edge (None when the
        cover lands exactly on a block edge).
        """
        if self.mode != "bitp":
            raise RuntimeError("plan_since is only available in BITP mode")
        include_live, nodes, boundary = self._cover_since(timestamp)
        covered = sum(node.size for node in nodes)
        if include_live:
            covered += self._block_count
        if boundary is not None:
            covered += boundary.size
        return {
            "structure": "merge_tree",
            "mode": self.mode,
            "blocks": [self._node_meta(node) for node in nodes],
            "boundary": None if boundary is None else self._node_meta(boundary),
            "sealed_read": len(nodes) + (1 if boundary is not None else 0),
            "live_partial": 1 if include_live else 0,
            "covered_items": covered,
            "nodes_stored": self.num_nodes(),
            "block_size": self.block_size,
            "error_bound": self.eps,
        }

    def node_metadata(self) -> list:
        """Index/timestamp metadata of every stored node (spine + retained).

        Ground truth for explain-plan fidelity checks: every block a
        :meth:`plan_at`/:meth:`plan_since` lists must appear here (the live
        partial block is not a stored node and is reported separately).
        """
        return [self._node_meta(node) for node in self._candidates()]

    def _smallest_node_ending_at(self, position: int) -> Optional[_Node]:
        best = None
        for node in self._candidates():
            if node.end == position and (best is None or node.size < best.size):
                best = node
        return best

    def num_nodes(self) -> int:
        """Stored nodes (spine + retained), excluding the live block."""
        return len(self._spine) + len(self._retained)

    def memory_bytes(self) -> int:
        """Sum of node sketch sizes plus per-node overhead and the live block."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        spine = sum(node.sketch.memory_bytes() for node in self._spine)
        retained = sum(node.sketch.memory_bytes() for node in self._retained)
        return {
            "live_block": self._block_sketch.memory_bytes(),
            "spine_sketches": spine,
            "retained_sketches": retained,
            "node_overhead": self.num_nodes() * _NODE_OVERHEAD_BYTES,
        }

    def space_bound_bytes(self) -> int:
        """Theorem 5.1 bound at the current stream position:
        ``O(s * (1/eps) * log n)`` node sketches of modelled size ``s``
        (the largest sketch currently stored)."""
        import math

        sketch_size = max(
            [self._block_sketch.memory_bytes()]
            + [node.sketch.memory_bytes() for node in self._candidates()]
        )
        blocks = max(1, self.count // self.block_size)
        levels = 1 + math.ceil(math.log2(blocks)) if blocks > 1 else 1
        # Per level: the spine node plus up to ~2/eps retained children.
        nodes_bound = levels * (1 + math.ceil(2.0 / self.eps))
        return (sketch_size + _NODE_OVERHEAD_BYTES) * (nodes_bound + 1)


def _resolve_apply(probe: Any) -> Callable:
    import inspect

    from repro.core.checkpoint_chain import apply_unweighted, apply_weighted

    params = list(inspect.signature(probe.update).parameters.values())
    if len(params) >= 2:
        return apply_weighted
    return apply_unweighted


def _resolve_apply_batch(probe: Any, apply_update: Callable) -> Optional[Callable]:
    from repro.core.checkpoint_chain import resolve_apply_batch

    return resolve_apply_batch(probe, apply_update)
