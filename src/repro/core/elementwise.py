"""Elementwise checkpoint chains (Section 4.1, Lemma 4.2).

For *h-component* additive-error sketches — where each stream element touches
at most ``h`` counters whose meaning is stable over the stream (Misra-Gries:
h=1, CountMin / Count sketch: h=depth) — checkpointing the whole sketch is
wasteful.  Instead each counter keeps its own history and records a new
``(timestamp, value)`` entry only when it has drifted more than
``eps * W(t_now)`` from its last recorded value.  Total checkpoints stay
``O((1/eps) log W)`` but each costs one counter, not a full sketch: space
``O(h * (1/eps) * log W)`` (Theorem 4.2).

This module provides the paper's two instantiations:

* :class:`ChainMisraGries` — "CMG", the ATTP heavy-hitters sketch evaluated
  in Section 6.1.  Recall is guaranteed (no false negatives) when queried
  with the error margin.
* :class:`ChainCountMin` — "CCM", the linear-sketch variant; used here for
  point queries and the elementwise-vs-full-chain ablation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.core.base import TimestampGuard, check_batch_lengths
from repro.core.timeindex import GeometricHistory, History
from repro.telemetry.registry import TELEMETRY as _TEL, timed


def _chain_metrics(structure: str):
    """Updates counter, seals counter and estimate_at histogram for one chain.

    The live base sketches (Misra-Gries dict / CountMin / Count sketch) tick
    their own ``sketch_*`` counters on top of these.
    """
    return (
        _TEL.counter(
            "persistent_updates_total",
            "Stream items applied to a persistent structure, by structure.",
            structure=structure,
        ),
        _TEL.counter(
            "checkpoint_seals_total",
            "Checkpoint snapshots sealed, by structure.",
            structure=structure,
        ),
        _TEL.histogram(
            "persistent_query_seconds",
            "Wall time of historical queries, by structure and operation.",
            structure=structure,
            op="estimate_at",
        ),
    )


_CMG_UPDATES, _CMG_SEALS, _CMG_QUERY = _chain_metrics("chain_misra_gries")
_CCM_UPDATES, _CCM_SEALS, _CCM_QUERY = _chain_metrics("chain_countmin")
_CCS_UPDATES, _CCS_SEALS, _CCS_QUERY = _chain_metrics("chain_countsketch")


class ChainMisraGries:
    """ATTP Misra-Gries via per-key counter histories (the paper's CMG).

    Parameters
    ----------
    eps:
        Total additive error target: the live MG uses ``k = ceil(2/eps) - 1``
        counters (error ``eps/2 * W``) and counter histories record on drift
        beyond ``eps/2 * W`` — overall ``eps * W`` additive error at any
        historical time, never overestimating by more than that.
    """

    def __init__(self, eps: float):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.eps = eps
        self._mg_eps = eps / 2.0
        self._ckpt_eps = eps / 2.0
        self.k = max(1, math.ceil(1.0 / self._mg_eps) - 1)
        self._guard = TimestampGuard()
        self._counters: Dict[int, int] = {}
        self._histories: Dict[int, History] = {}
        self._last_recorded: Dict[int, float] = {}
        self._weight_history = GeometricHistory(delta=0.01)
        self.total_weight = 0.0
        self.count = 0

    def update(self, key: int, timestamp: float, weight: int = 1) -> None:
        """Add ``weight`` occurrences of ``key`` at ``timestamp``."""
        if weight <= 0:
            raise ValueError("Misra-Gries is insertion-only; weight must be > 0")
        self._guard.check(timestamp)
        self.count += 1
        self.total_weight += weight
        if _TEL.enabled:
            _CMG_UPDATES.inc()
        self._weight_history.observe(timestamp, self.total_weight)
        self._mg_update(key, weight, timestamp)

    def update_batch(self, keys, timestamps, weights=None) -> None:
        """Bulk :meth:`update` (scalar loop; counter histories are inherently
        sequential — every item can move the drift threshold).  A mid-batch
        violation applies the prefix before it and raises, like the loop."""
        n = check_batch_lengths(keys, timestamps, weights)
        for index in range(n):
            self.update(
                keys[index],
                float(timestamps[index]),
                1 if weights is None else int(weights[index]),
            )

    def _mg_update(self, key: int, weight: int, timestamp: float) -> None:
        counters = self._counters
        if key in counters:
            counters[key] += weight
            self._maybe_record(key, timestamp)
            return
        if len(counters) < self.k:
            counters[key] = weight
            self._maybe_record(key, timestamp)
            return
        dec = min(weight, min(counters.values()))
        remaining = weight - dec
        dead = []
        for other, value in counters.items():
            value -= dec
            if value <= 0:
                dead.append(other)
            else:
                counters[other] = value
                self._maybe_record(other, timestamp)
        for other in dead:
            del counters[other]
            self._maybe_record(other, timestamp)
        if remaining > 0:
            self._mg_update(key, remaining, timestamp)

    def _maybe_record(self, key: int, timestamp: float) -> None:
        current = float(self._counters.get(key, 0))
        last = self._last_recorded.get(key, 0.0)
        if abs(current - last) > self._ckpt_eps * self.total_weight:
            history = self._histories.get(key)
            if history is None:
                history = History()
                self._histories[key] = history
            history.append(timestamp, current)
            self._last_recorded[key] = current
            if _TEL.enabled:
                _CMG_SEALS.inc()

    def total_weight_at(self, timestamp: float) -> float:
        """W(t) from the geometric weight history (slight underestimate)."""
        return self._weight_history.value_at(timestamp)

    @timed(_CMG_QUERY)
    def estimate_at(self, key: int, timestamp: float) -> float:
        """Estimated count of ``key`` in ``A^timestamp``.

        Within ``eps * W(t)`` of the truth, and never above it by more than
        the checkpoint drift ``(eps/2) * W(t)``.
        """
        history = self._histories.get(key)
        if history is None:
            return 0.0
        return float(history.value_at(timestamp, default=0.0))

    def estimate_now(self, key: int) -> float:
        """Estimated count of ``key`` over the whole stream (live MG)."""
        return float(self._counters.get(key, 0))

    def heavy_hitters_at(
        self, timestamp: float, phi: float, guarantee_recall: bool = True
    ) -> List[int]:
        """Keys with frequency >= ``phi * W(t)`` in ``A^timestamp``.

        With ``guarantee_recall`` the reporting threshold is lowered by the
        total error margin, so every true phi-heavy hitter is returned (the
        "recall = 1" property the paper highlights for CMG) at the price of
        some false positives near the threshold.
        """
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        w_t = self.total_weight_at(timestamp)
        margin = (self._mg_eps + self._ckpt_eps) * w_t if guarantee_recall else 0.0
        cut = phi * w_t - margin
        hitters = []
        for key, history in self._histories.items():
            if float(history.value_at(timestamp, default=0.0)) >= cut:
                hitters.append(key)
        return sorted(hitters)

    def num_checkpoints(self) -> int:
        """Total counter-history entries stored."""
        return sum(len(history) for history in self._histories.values())

    def memory_bytes(self) -> int:
        """History entry: key(4, amortised)+time(8)+value(8); plus the live
        MG counters (12 each) and the W(t) history."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        return {
            "counter_histories": self.num_checkpoints() * 20,
            "live_counters": len(self._counters) * 12,
            "weight_history": self._weight_history.memory_bytes(),
        }


class ChainCountMin:
    """ATTP CountMin via per-cell counter histories (elementwise chaining).

    Each update touches ``depth`` cells; a cell records a checkpoint when it
    has grown more than ``eps_ckpt * W`` since its last record.  Point
    queries at time ``t`` take the min over rows of each cell's historical
    value; the estimate inherits CountMin's one-sided overestimate plus the
    checkpoint drift (the historical value is a slight *underestimate* of the
    cell, so the two partially cancel in practice).
    """

    def __init__(self, width: int, depth: int = 3, eps_ckpt: float = 0.001, seed: int = 0):
        from repro.sketches.countmin import CountMinSketch

        if not 0 < eps_ckpt < 1:
            raise ValueError(f"eps_ckpt must be in (0, 1), got {eps_ckpt}")
        self.eps_ckpt = eps_ckpt
        self._cm = CountMinSketch(width, depth, seed=seed)
        self._guard = TimestampGuard()
        self._histories: Dict[tuple, History] = {}
        self._last_recorded: Dict[tuple, int] = {}
        self._weight_history = GeometricHistory(delta=0.01)
        self.count = 0

    @property
    def total_weight(self) -> int:
        return self._cm.total_weight

    def update(self, key: int, timestamp: float, weight: int = 1) -> None:
        """Add ``weight`` to ``key`` at ``timestamp``."""
        if weight <= 0:
            raise ValueError("ChainCountMin is insertion-only; weight must be > 0")
        self._guard.check(timestamp)
        self.count += 1
        self._cm.update(key, weight)
        if _TEL.enabled:
            _CCM_UPDATES.inc()
        self._weight_history.observe(timestamp, float(self._cm.total_weight))
        for row, bucket in enumerate(self._cm._buckets(key)):
            cell = (row, bucket)
            current = int(self._cm.counters()[row, bucket])
            last = self._last_recorded.get(cell, 0)
            if current - last > self.eps_ckpt * self._cm.total_weight:
                history = self._histories.get(cell)
                if history is None:
                    history = History()
                    self._histories[cell] = history
                history.append(timestamp, current)
                self._last_recorded[cell] = current
                if _TEL.enabled:
                    _CCM_SEALS.inc()

    def update_batch(self, keys, timestamps, weights=None) -> None:
        """Bulk :meth:`update` (scalar loop; cell histories are inherently
        sequential — every item can move the drift threshold).  A mid-batch
        violation applies the prefix before it and raises, like the loop."""
        n = check_batch_lengths(keys, timestamps, weights)
        for index in range(n):
            self.update(
                keys[index],
                float(timestamps[index]),
                1 if weights is None else int(weights[index]),
            )

    def total_weight_at(self, timestamp: float) -> float:
        """W(t) from the geometric weight history (slight underestimate)."""
        return self._weight_history.value_at(timestamp)

    @timed(_CCM_QUERY)
    def estimate_at(self, key: int, timestamp: float) -> float:
        """Estimated count of ``key`` in ``A^timestamp``."""
        estimates = []
        for row, bucket in enumerate(self._cm._buckets(key)):
            history = self._histories.get((row, bucket))
            value = history.value_at(timestamp, default=0.0) if history else 0.0
            estimates.append(float(value))
        return min(estimates)

    def estimate_now(self, key: int) -> int:
        """Estimated count over the whole stream (live CountMin)."""
        return self._cm.query(key)

    def heavy_hitters_at(
        self, timestamp: float, phi: float, candidates: Iterable[int]
    ) -> List[int]:
        """Candidates whose estimated count at ``t`` reaches ``phi * W(t)``.

        CountMin cannot enumerate keys by itself; callers supply candidates
        (e.g. from a dyadic hierarchy or an exact candidate set in benches).
        """
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        cut = phi * self.total_weight_at(timestamp)
        return sorted(
            key for key in candidates if self.estimate_at(key, timestamp) >= cut
        )

    def estimate_between(self, key: int, start: float, end: float) -> float:
        """FATP-style estimate of ``key``'s count in the interval ``(start, end]``.

        Linear sketches difference cleanly: the per-cell histories are
        monotone counters, so ``est(end) - est(start)`` bounds the interval
        count with twice the single-query error.  This is the query form the
        PCM baseline supports natively; provided here as the paper suggests
        its ATTP chains subsume it for linear sketches.
        """
        if end < start:
            raise ValueError(f"empty interval ({start}, {end}]")
        return max(0.0, self.estimate_at(key, end) - self.estimate_at(key, start))

    def num_checkpoints(self) -> int:
        """Total cell-history entries stored."""
        return sum(len(history) for history in self._histories.values())

    def memory_bytes(self) -> int:
        """History entry: cell id(4)+time(8)+value(8); plus live table."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        return {
            "cell_histories": self.num_checkpoints() * 20,
            "live_table": self._cm.memory_bytes(),
            "weight_history": self._weight_history.memory_bytes(),
        }


class ChainCountSketch:
    """ATTP Count sketch via per-cell histories (elementwise chaining).

    The Count sketch is linear — each of its ``depth`` touched cells has a
    consistent meaning, so Lemma 4.2 applies with ``h = depth``.  Unlike the
    CountMin chain, cells move in both directions (signed updates), so the
    drift rule uses absolute deviation and the stream supports *turnstile*
    updates (insertions and deletions) as long as the total |weight| grows.
    """

    def __init__(self, width: int, depth: int = 5, eps_ckpt: float = 0.001, seed: int = 0):
        from repro.sketches.countsketch import CountSketch

        if not 0 < eps_ckpt < 1:
            raise ValueError(f"eps_ckpt must be in (0, 1), got {eps_ckpt}")
        self.eps_ckpt = eps_ckpt
        self._cs = CountSketch(width, depth, seed=seed)
        self._guard = TimestampGuard()
        self._histories: Dict[tuple, History] = {}
        self._last_recorded: Dict[tuple, int] = {}
        self._weight_history = GeometricHistory(delta=0.01)
        self._absolute_weight = 0.0
        self.count = 0

    @property
    def total_weight(self) -> int:
        return self._cs.total_weight

    def update(self, key: int, timestamp: float, weight: int = 1) -> None:
        """Add ``weight`` (may be negative — turnstile) at ``timestamp``."""
        if weight == 0:
            raise ValueError("weight must be non-zero")
        self._guard.check(timestamp)
        self.count += 1
        self._cs.update(key, weight)
        if _TEL.enabled:
            _CCS_UPDATES.inc()
        self._absolute_weight += abs(weight)
        self._weight_history.observe(timestamp, self._absolute_weight)
        counters = self._cs.counters()
        for row in range(self._cs.depth):
            bucket = self._cs._hashes[row](key)
            cell = (row, bucket)
            current = int(counters[row, bucket])
            last = self._last_recorded.get(cell, 0)
            if abs(current - last) > self.eps_ckpt * self._absolute_weight:
                history = self._histories.get(cell)
                if history is None:
                    history = History()
                    self._histories[cell] = history
                history.append(timestamp, current)
                self._last_recorded[cell] = current
                if _TEL.enabled:
                    _CCS_SEALS.inc()

    def update_batch(self, keys, timestamps, weights=None) -> None:
        """Bulk :meth:`update` (scalar loop; cell histories are inherently
        sequential — every item can move the drift threshold).  A mid-batch
        violation applies the prefix before it and raises, like the loop."""
        n = check_batch_lengths(keys, timestamps, weights)
        for index in range(n):
            self.update(
                keys[index],
                float(timestamps[index]),
                1 if weights is None else int(weights[index]),
            )

    @timed(_CCS_QUERY)
    def estimate_at(self, key: int, timestamp: float) -> float:
        """Median-of-rows estimate of ``key``'s signed count in ``A^timestamp``."""
        import numpy as np

        estimates = []
        for row in range(self._cs.depth):
            bucket = self._cs._hashes[row](key)
            history = self._histories.get((row, bucket))
            value = history.value_at(timestamp, default=0.0) if history else 0.0
            estimates.append(self._cs._signs[row](key) * float(value))
        return float(np.median(estimates))

    def estimate_now(self, key: int) -> int:
        """Estimate over the whole stream (live Count sketch)."""
        return self._cs.query(key)

    def estimate_between(self, key: int, start: float, end: float) -> float:
        """FATP-style estimate of the signed count in ``(start, end]``."""
        if end < start:
            raise ValueError(f"empty interval ({start}, {end}]")
        return self.estimate_at(key, end) - self.estimate_at(key, start)

    def num_checkpoints(self) -> int:
        """Total cell-history entries stored."""
        return sum(len(history) for history in self._histories.values())

    def memory_bytes(self) -> int:
        """History entry: cell id(4)+time(8)+value(8); plus live table."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        return {
            "cell_histories": self.num_checkpoints() * 20,
            "live_table": self._cs.memory_bytes(),
            "weight_history": self._weight_history.memory_bytes(),
        }
