"""Persistent Frequent Directions — Algorithm 1 of the paper (Section 4.2).

FD is not an h-component sketch (every shrink rewrites all rows jointly), but
a similar space saving is achieved with *partial* and *full* checkpoints:

* maintain an FD sketch ``C`` of the *residual* stream (rows since material
  not yet spilled into checkpoints);
* whenever the top residual direction carries squared norm at least
  ``||A||_F^2 / ell``, spill it as a **partial checkpoint** — one
  d-dimensional row ``b = sigma * v`` — and remove it from ``C``;
* after every ``ell`` partial checkpoints, merge the previous full checkpoint
  with the accumulated partials through FD into a new **full checkpoint**
  (an ``ell x d`` matrix).

A query at time ``t`` stacks the latest full checkpoint at or before ``t``
with the partial checkpoints in between; Theorem 4.3 shows the result ``G``
satisfies ``||A^T A - G^T G||_2 <= 2 * eps * ||A||_F^2`` with ``ell = 2/eps``
and total space ``O((d / eps) log(||A||_F / ||a_1||))``.
"""

from __future__ import annotations

import bisect
import math
from typing import List

import numpy as np

from repro.core.base import TimestampGuard, check_finite_row
from repro.evaluation.memory import FLOAT_BYTES, TIMESTAMP_BYTES
from repro.sketches.frequent_directions import FrequentDirections, _shrink
from repro.telemetry.registry import TELEMETRY as _TEL, timed

_UPDATES = _TEL.counter(
    "persistent_updates_total",
    "Stream items applied to a persistent structure, by structure.",
    structure="pfd",
)
_PARTIAL_SEALS = _TEL.counter(
    "checkpoint_seals_total",
    "Checkpoint snapshots sealed, by structure.",
    structure="pfd_partial",
)
_FULL_SEALS = _TEL.counter(
    "checkpoint_seals_total",
    "Checkpoint snapshots sealed, by structure.",
    structure="pfd_full",
)
_QUERY_SECONDS = _TEL.histogram(
    "persistent_query_seconds",
    "Wall time of historical queries, by structure and operation.",
    structure="pfd",
    op="sketch_at",
)


class PersistentFrequentDirections:
    """ATTP eps-MC sketch via partial/full FD checkpoints (the paper's PFD)."""

    def __init__(self, ell: int, dim: int):
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.ell = ell
        self.dim = dim
        self._guard = TimestampGuard()
        self._residual = FrequentDirections(ell, dim)
        # Partial checkpoints: spilled top directions, with timestamps.
        self._partial_times: List[float] = []
        self._partial_rows: List[np.ndarray] = []
        # Full checkpoints: ell x d matrices, with timestamps.
        self._full_times: List[float] = []
        self._full_matrices: List[np.ndarray] = []
        self._partials_since_full = 0
        self.squared_frobenius = 0.0
        self.count = 0

    @classmethod
    def from_error(cls, eps: float, dim: int) -> "PersistentFrequentDirections":
        """Size per Theorem 4.3: ``ell = ceil(2 / eps)``."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        return cls(int(np.ceil(2.0 / eps)), dim)

    def update(self, row: np.ndarray, timestamp: float) -> None:
        """Append one d-dimensional row at ``timestamp`` (Algorithm 1 body)."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.dim,):
            raise ValueError(f"expected a row of shape ({self.dim},), got {row.shape}")
        check_finite_row(row)
        self._guard.check(timestamp)
        self.count += 1
        self.squared_frobenius += float(row @ row)
        if _TEL.enabled:
            _UPDATES.inc()
        self._residual.update(row)
        # Spill while the top residual direction is heavy (lines 5-11).
        while True:
            sigma_sq, _ = self._residual.top_direction()
            if sigma_sq <= 0.0 or sigma_sq < self.squared_frobenius / self.ell:
                break
            spilled = self._residual.remove_top_direction()
            self._partial_times.append(timestamp)
            self._partial_rows.append(spilled)
            self._partials_since_full += 1
            if _TEL.enabled:
                _PARTIAL_SEALS.inc()
            if self._partials_since_full >= self.ell:
                self._make_full_checkpoint(timestamp)

    def _make_full_checkpoint(self, timestamp: float) -> None:
        last_full = self._full_matrices[-1] if self._full_matrices else None
        recent = self._partial_rows[-self._partials_since_full :]
        if last_full is None:
            stacked = np.vstack(recent)
        else:
            stacked = np.vstack([last_full] + recent)
        self._full_times.append(timestamp)
        self._full_matrices.append(_shrink(stacked, self.ell))
        self._partials_since_full = 0
        if _TEL.enabled:
            _FULL_SEALS.inc()

    @timed(_QUERY_SECONDS)
    def sketch_at(self, timestamp: float) -> np.ndarray:
        """Matrix ``G`` whose Gram ``G^T G`` approximates ``A(t)^T A(t)``.

        Stacks the latest full checkpoint at or before ``t`` with the partial
        checkpoints recorded after it, up to ``t``.
        """
        full_idx = bisect.bisect_right(self._full_times, timestamp) - 1
        parts: List[np.ndarray] = []
        if full_idx >= 0:
            parts.append(self._full_matrices[full_idx])
            start = self._partials_after_full(full_idx)
        else:
            start = 0
        end = bisect.bisect_right(self._partial_times, timestamp)
        if end > start:
            parts.append(np.vstack(self._partial_rows[start:end]))
        if not parts:
            return np.zeros((0, self.dim))
        return np.vstack(parts)

    def _partials_after_full(self, full_idx: int) -> int:
        """Index of the first partial checkpoint recorded after full ``full_idx``.

        Full checkpoint j consumes the first (j+1)*ell partial checkpoints.
        """
        return (full_idx + 1) * self.ell

    def covariance_at(self, timestamp: float) -> np.ndarray:
        """``G^T G`` — the covariance estimate for the prefix at ``timestamp``."""
        g = self.sketch_at(timestamp)
        return g.T @ g

    def covariance_now(self) -> np.ndarray:
        """Covariance estimate including the live residual sketch."""
        g = self.sketch_at(float("inf"))
        return g.T @ g + self._residual.covariance()

    def num_partial_checkpoints(self) -> int:
        """Number of spilled single-row (partial) checkpoints."""
        return len(self._partial_rows)

    def num_full_checkpoints(self) -> int:
        """Number of ell x d (full) checkpoints."""
        return len(self._full_matrices)

    def memory_bytes(self) -> int:
        """8 bytes per stored matrix entry, + 8-byte timestamp per checkpoint,
        + the live residual sketch."""
        return sum(self.memory_breakdown().values())

    def memory_breakdown(self) -> dict:
        """Component map for the memory accountant; sums to ``memory_bytes``."""
        row_bytes = self.dim * FLOAT_BYTES + TIMESTAMP_BYTES
        return {
            "partial_checkpoints": len(self._partial_rows) * row_bytes,
            "full_checkpoints": len(self._full_matrices)
            * (self.ell * self.dim * FLOAT_BYTES + TIMESTAMP_BYTES),
            "residual_sketch": self._residual.memory_bytes(),
        }

    def space_bound_bytes(self) -> int:
        """Theorem 4.3 bound: ``O((d / eps) log ||A||_F)`` stored entries —
        modelled as one full checkpoint plus up to ``ell`` pending partials
        per doubling of the squared Frobenius norm, plus the residual."""
        residual = self._residual.memory_bytes()
        if self.count == 0:
            return residual
        log_term = 1 + math.ceil(max(0.0, math.log(max(self.squared_frobenius, 1.0))))
        full_level = self.ell * self.dim * FLOAT_BYTES + TIMESTAMP_BYTES
        partial_level = self.ell * (self.dim * FLOAT_BYTES + TIMESTAMP_BYTES)
        return residual + log_term * (full_level + partial_level)
