"""Shared types and protocols for persistent sketches.

The paper (Section 2.3) defines a stream ``A = ((a_1, t_1), ..., (a_n, t_n))``
with strictly increasing timestamps (ties broken by arrival order), and two
persistence models over it:

* **ATTP** — query the summary of the *prefix* ``A^t = A[t_0, t]``.
* **BITP** — query the summary of the *suffix* ``A^{-t} = A[t, t_now]``.

Every persistent sketch in this package implements one of the two small
interfaces below.  Plain streaming sketches (the substrate in
:mod:`repro.sketches`) follow the structural protocols ``Sketch`` /
``MergeableSketch``; no inheritance is required of them.
"""

from __future__ import annotations

import functools
import inspect
import math
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np


@dataclass(frozen=True)
class StreamItem:
    """One timestamped stream element.

    ``value`` is the object (an integer id, a vector, ...), ``timestamp`` the
    arrival time, and ``weight`` an optional non-negative importance used by
    weighted samplers (implicit weights such as squared row norms are computed
    by the sketches themselves).
    """

    value: Any
    timestamp: float
    weight: float = 1.0


@runtime_checkable
class Sketch(Protocol):
    """Minimal streaming-sketch protocol: ingest and account memory."""

    def update(self, *args, **kwargs) -> None: ...

    def memory_bytes(self) -> int: ...


@runtime_checkable
class MergeableSketch(Protocol):
    """A sketch whose summaries combine without re-inspecting the data."""

    def update(self, *args, **kwargs) -> None: ...

    def merge(self, other: Any) -> None: ...

    def memory_bytes(self) -> int: ...


class MonotoneViolation(ValueError):
    """Raised when a stream update arrives with a decreasing timestamp."""


@dataclass
class TimestampGuard:
    """Enforces non-decreasing timestamps on a stream consumer.

    The paper assumes increasing timestamps with ties handled "through an
    assigned canonical order"; we therefore accept equal timestamps (arrival
    order is the canonical order) and reject only decreases.
    """

    last: float = field(default=float("-inf"))

    def check(self, timestamp: float) -> float:
        """Validate and record one timestamp; returns it unchanged."""
        if not math.isfinite(timestamp):
            raise ValueError(f"timestamp must be finite, got {timestamp}")
        if timestamp < self.last:
            raise MonotoneViolation(
                f"timestamp {timestamp} is earlier than the previous {self.last}"
            )
        self.last = timestamp
        return timestamp


def check_batch_lengths(values, timestamps, weights=None) -> int:
    """Validate that a batch's parallel arrays agree in length; returns it.

    Raised *before* anything is applied, so a shape mistake never leaves a
    sketch with half a batch in it.
    """
    n = len(values)
    if len(timestamps) != n:
        raise ValueError(
            f"values and timestamps length mismatch: {n} vs {len(timestamps)}"
        )
    if weights is not None and len(weights) != n:
        raise ValueError(
            f"values and weights length mismatch: {n} vs {len(weights)}"
        )
    return n


def first_timestamp_violation(last: float, timestamps: np.ndarray) -> int:
    """Index of the first invalid timestamp in a batch, or -1 if all valid.

    Mirrors :meth:`TimestampGuard.check` applied left to right starting from
    ``last``: a timestamp is invalid if it is non-finite or decreases below
    its predecessor.  Entries after the first violation are ignored (the
    scalar loop would never have seen them).
    """
    timestamps = np.asarray(timestamps, dtype=float)
    if timestamps.size == 0:
        return -1
    previous = np.concatenate(([last], timestamps[:-1]))
    ok = np.isfinite(timestamps) & (timestamps >= previous)
    if ok.all():
        return -1
    return int(np.argmax(~ok))


def first_invalid_weight(weights: np.ndarray) -> int:
    """Index of the first invalid weight in a batch, or -1 if all valid.

    Mirrors :func:`check_positive_weight`: a weight is invalid unless it is
    finite and strictly positive (NaN and inf both fail).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        return -1
    ok = (weights > 0) & np.isfinite(weights)
    if ok.all():
        return -1
    return int(np.argmax(~ok))


def check_positive_weight(weight: float) -> float:
    """Validate a stream weight: finite and strictly positive.

    ``weight <= 0`` alone would let NaN (never comparable) and +inf through,
    silently poisoning priorities and weight totals — a persistent structure
    cannot afford that, so reject loudly.
    """
    if not (weight > 0) or math.isinf(weight):
        raise ValueError(f"weight must be finite and positive, got {weight}")
    return weight


@functools.lru_cache(maxsize=None)
def _update_accepts_weight(cls: type) -> bool:
    """Whether ``cls.update`` can take a ``weight`` keyword argument."""
    try:
        signature = inspect.signature(cls.update)
    except (TypeError, ValueError):  # builtins / C accelerators: assume yes
        return True
    parameters = signature.parameters
    if "weight" in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def apply_stream_update(
    sketch: Any, value: Any, timestamp: float, weight: float = 1.0
) -> None:
    """Apply one ``(value, timestamp, weight)`` stream item to any sketch.

    The single dispatch point shared by live ingestion and WAL replay
    (:mod:`repro.durability`): some sketches take ``update(value, t)``, others
    ``update(value, t, weight)``, and a durable log must re-apply a record
    exactly the way it was applied the first time.  Dispatch depends only on
    the sketch's type, so replaying the same records through the same sketch
    class reproduces the same state bit-for-bit.
    """
    if _update_accepts_weight(type(sketch)):
        sketch.update(value, timestamp, weight=weight)
    elif weight == 1.0:
        sketch.update(value, timestamp)
    else:
        raise TypeError(
            f"{type(sketch).__name__}.update does not accept weights, "
            f"got weight={weight}"
        )


@functools.lru_cache(maxsize=None)
def _batch_dispatch(cls: type):
    """``(has_update_batch, accepts_weights)`` for ``cls.update_batch``."""
    method = getattr(cls, "update_batch", None)
    if method is None:
        return (False, False)
    try:
        signature = inspect.signature(method)
    except (TypeError, ValueError):  # builtins / C accelerators: assume yes
        return (True, True)
    parameters = signature.parameters
    accepts = "weights" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    return (True, accepts)


def apply_stream_batch(sketch: Any, values, timestamps=None, weights=None) -> None:
    """Apply one batch of stream items to any sketch, replay-identically.

    The batch analogue of :func:`apply_stream_update`, and the single
    dispatch point shared by live batch ingestion and WAL ``BATCH``-record
    replay (:mod:`repro.durability`).  Dispatches to the sketch's own
    ``update_batch(values, timestamps[, weights])`` when it has one —
    typically a NumPy-vectorized override — and otherwise falls back to a
    scalar loop over :func:`apply_stream_update`.  Dispatch depends only on
    the sketch's type, so replaying a logged batch through the same sketch
    class reproduces the same state (including RNG consumption for seeded
    samplers) bit-for-bit.

    Accepts either the legacy triple form ``(values, timestamps, weights)``
    or a single :class:`~repro.core.StreamBatch` (its columnar arrays are
    handed to the sketch without copies).

    Like the scalar loop it emulates, a mid-batch rejection (monotonicity or
    weight violation) leaves the prefix before the offending item applied
    and re-raises the same exception.
    """
    if timestamps is None and weights is None:
        # single-argument StreamBatch form (duck-typed: anything columnar
        # with .values/.timestamps/.weights works, avoiding an import cycle)
        values, timestamps, weights = values.values, values.timestamps, values.weights
    has_batch, accepts_weights = _batch_dispatch(type(sketch))
    if has_batch:
        if accepts_weights:
            sketch.update_batch(values, timestamps, weights=weights)
            return
        if weights is None:
            sketch.update_batch(values, timestamps)
            return
        weight_array = np.asarray(weights, dtype=float)
        if np.all(weight_array == 1.0):
            sketch.update_batch(values, timestamps)
            return
        raise TypeError(
            f"{type(sketch).__name__}.update_batch does not accept weights"
        )
    if weights is None:
        for value, timestamp in zip(values, timestamps):
            apply_stream_update(sketch, value, timestamp)
    else:
        for value, timestamp, weight in zip(values, timestamps, weights):
            apply_stream_update(sketch, value, timestamp, weight)


def update_batch_fallback(sketch: Any, values, timestamps, weights=None) -> None:
    """Scalar-loop batch ingestion: the documented fallback path.

    Used as the body of ``update_batch`` on sketches whose update logic is
    inherently order-dependent per item (see docs/BATCHING.md): identical
    semantics to calling ``update`` once per item, including prefix-apply
    on a mid-batch rejection.
    """
    n = check_batch_lengths(values, timestamps, weights)
    if weights is None:
        for i in range(n):
            sketch.update(values[i], timestamps[i])
    else:
        for i in range(n):
            sketch.update(values[i], timestamps[i], weights[i])


def check_finite_row(row: np.ndarray) -> np.ndarray:
    """Validate a matrix row: all entries finite."""
    if not np.isfinite(row).all():
        raise ValueError("matrix row contains NaN or infinite entries")
    return row


class AttpSketch(Protocol):
    """At-the-time persistent sketch: answers queries on any prefix A^t."""

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> None: ...

    def memory_bytes(self) -> int: ...


class BitpSketch(Protocol):
    """Back-in-time persistent sketch: answers queries on any suffix A^{-t}."""

    def update(self, value: Any, timestamp: float, weight: float = 1.0) -> None: ...

    def memory_bytes(self) -> int: ...
