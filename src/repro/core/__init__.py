"""Persistence core: the paper's ATTP/BITP constructions.

* Section 3  — persistent random samples (uniform & weighted, ATTP & BITP)
* Section 4  — checkpoint chaining (full-sketch and elementwise) and PFD
* Section 5  — merge-tree persistence for mergeable sketches
"""

from repro.core.base import (
    AttpSketch,
    BitpSketch,
    MergeableSketch,
    MonotoneViolation,
    Sketch,
    StreamItem,
    TimestampGuard,
    apply_stream_batch,
    apply_stream_update,
)
from repro.core.batch import StreamBatch
from repro.core.bitp_sampling import BitpPrioritySample
from repro.core.combine import (
    combine_any,
    combine_heavy_hitters,
    combine_sum,
    combine_union,
    merge_sketches,
)
from repro.core.checkpoint_chain import CheckpointChain
from repro.core.elementwise import ChainCountMin, ChainCountSketch, ChainMisraGries
from repro.core.interval_index import IntervalIndex
from repro.core.merge_tree import MergeTreePersistence
from repro.core.persistent_priority import PersistentPrioritySample, PersistentWeightedWR
from repro.core.persistent_sampling import (
    PersistentReservoirChains,
    PersistentTopKSample,
    SampleRecord,
)
from repro.core.pfd import PersistentFrequentDirections
from repro.core.timeindex import GeometricHistory, History

__all__ = [
    "AttpSketch",
    "BitpPrioritySample",
    "BitpSketch",
    "ChainCountMin",
    "ChainCountSketch",
    "ChainMisraGries",
    "CheckpointChain",
    "GeometricHistory",
    "History",
    "IntervalIndex",
    "MergeTreePersistence",
    "MergeableSketch",
    "MonotoneViolation",
    "PersistentFrequentDirections",
    "PersistentPrioritySample",
    "PersistentReservoirChains",
    "PersistentTopKSample",
    "PersistentWeightedWR",
    "SampleRecord",
    "Sketch",
    "StreamBatch",
    "StreamItem",
    "TimestampGuard",
    "apply_stream_batch",
    "apply_stream_update",
    "combine_any",
    "combine_heavy_hitters",
    "combine_sum",
    "combine_union",
    "merge_sketches",
]
