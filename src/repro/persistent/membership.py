"""Persistent approximate membership.

The paper cites persistent Bloom filters (Peng et al., SIGMOD 2018) as a
problem-specific prior; its own frameworks cover the problem generically:

* :class:`AttpBloomMembership` — checkpoint-chained Bloom filter: "had key x
  been seen by time t?"  No false negatives at checkpoint granularity; false
  positives at the filter's rate.  Checkpoints trigger on insertion-count
  growth (Lemma 4.1's weight is the count here, since Bloom queries have no
  additive-error form); staleness means a key inserted within the last
  ``eps`` fraction of the prefix may be missed, the membership analogue of
  the chaining error.
* :class:`BitpBloomMembership` — merge tree of Bloom filters: "was key x
  seen in the last w items, for any w?"  Bloom union is register-wise OR, so
  it is mergeable and Section 5 applies directly.
"""

from __future__ import annotations

import functools

from repro.core.checkpoint_chain import CheckpointChain, apply_value_only
from repro.core.merge_tree import MergeTreePersistence
from repro.sketches.bloom import BloomFilter


class AttpBloomMembership:
    """ATTP membership: checkpoint-chained Bloom filter."""

    def __init__(self, capacity: int, fp_rate: float = 0.01, eps: float = 0.05, seed: int = 0):
        self._chain = CheckpointChain(
            functools.partial(BloomFilter.from_capacity, capacity, fp_rate, seed=seed),
            eps=eps,
            apply_update=apply_value_only,
        )

    @property
    def count(self) -> int:
        return self._chain.count

    def update(self, key: int, timestamp: float) -> None:
        """Insert one key at ``timestamp``."""
        self._chain.update(key, timestamp)

    def update_batch(self, keys, timestamps) -> None:
        """Bulk insert: checkpoint-exact batched chain ingest (vectorized
        Bloom bit-setting between checkpoint boundaries)."""
        self._chain.update_batch(keys, timestamps)

    def contains_at(self, key: int, timestamp: float) -> bool:
        """Whether ``key`` may have been inserted at or before ``timestamp``.

        False is definitive up to checkpoint staleness (a key inserted in the
        trailing ``eps`` fraction of the prefix may still read False).
        """
        snapshot = self._chain.sketch_at(timestamp)
        if snapshot is None:
            return False
        return snapshot.query(key)

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._chain.memory_bytes()


class BitpBloomMembership:
    """BITP membership: merge tree of Bloom filters over suffix windows.

    Merging ORs the per-node filters, so the false-positive rate of a window
    query grows with the number of distinct keys in the window — size
    ``capacity_per_block`` to the largest window you intend to query, not to
    the block.
    """

    def __init__(
        self,
        capacity_per_block: int = 256,
        fp_rate: float = 0.01,
        eps_tree: float = 0.1,
        block_size: int = 128,
        seed: int = 0,
    ):
        self._tree = MergeTreePersistence(
            functools.partial(
                BloomFilter.from_capacity,
                max(capacity_per_block, block_size),
                fp_rate,
                seed=seed,
            ),
            eps=eps_tree,
            mode="bitp",
            block_size=block_size,
        )

    @property
    def count(self) -> int:
        return self._tree.count

    def update(self, key: int, timestamp: float) -> None:
        """Insert one key at ``timestamp``."""
        self._tree.update(key, timestamp)

    def update_batch(self, keys, timestamps) -> None:
        """Bulk insert: block-exact batched merge-tree ingest."""
        self._tree.update_batch(keys, timestamps)

    def contains_since(self, key: int, timestamp: float) -> bool:
        """Whether ``key`` may have appeared in the window ``A[timestamp, now]``.

        The merged filter covers the window up to the eps cover slack (old
        edge) and one block of overshoot, so very-near-the-boundary keys can
        flip either way; everywhere else False is definitive.
        """
        merged = self._tree.sketch_since(timestamp)
        return merged.query(key)

    @property
    def peak_memory_bytes(self) -> int:
        return self._tree.peak_memory_bytes

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._tree.memory_bytes()
