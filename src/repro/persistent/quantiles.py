"""Persistent quantile summaries.

* :class:`AttpSampleQuantiles` — persistent uniform sample; a sample of size
  ``k = O(eps^-2 log(1/delta))`` is an eps-quantile summary of any prefix
  (Theorem 3.1).
* :class:`AttpChainKll` — checkpoint-chained KLL sketch (Theorem 4.1's
  eps-quantiles row).
* :class:`BitpMergeTreeQuantiles` — merge tree of KLL sketches: eps-quantile
  summaries over any suffix window (Theorem 5.1's framework).
"""

from __future__ import annotations

import functools
from typing import List

import numpy as np

from repro.core.checkpoint_chain import CheckpointChain
from repro.core.merge_tree import MergeTreePersistence
from repro.core.persistent_sampling import PersistentTopKSample
from repro.sketches.kll import KllSketch


def _float_list(values) -> List[float]:
    """Values as plain Python floats (matches the scalar ``float(value)``)."""
    return np.asarray(values, dtype=float).tolist()


def _empirical_quantile(values: List[float], phi: float) -> float:
    if not values:
        raise ValueError("cannot query an empty summary")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(phi * len(ordered) + 0.5) - 1))
    return ordered[index]


class AttpSampleQuantiles:
    """ATTP quantiles from a persistent uniform sample."""

    def __init__(self, k: int, seed: int = 0):
        self._sample = PersistentTopKSample(k, seed=seed)
        self.k = k

    @property
    def count(self) -> int:
        return self._sample.count

    def update(self, value: float, timestamp: float) -> None:
        """Insert one value at ``timestamp``."""
        self._sample.update(float(value), timestamp)

    def update_batch(self, values, timestamps) -> None:
        """Bulk insert (state-identical to repeated :meth:`update`)."""
        self._sample.update_batch(_float_list(values), timestamps)

    def quantile_at(self, timestamp: float, phi: float) -> float:
        """Estimated phi-quantile of ``A^timestamp``."""
        if not 0 <= phi <= 1:
            raise ValueError(f"phi must be in [0, 1], got {phi}")
        return _empirical_quantile(self._sample.sample_at(timestamp), phi)

    def cdf_at(self, timestamp: float, value: float) -> float:
        """Estimated fraction of ``A^timestamp`` at most ``value``."""
        sample = self._sample.sample_at(timestamp)
        if not sample:
            raise ValueError("cannot query an empty summary")
        return sum(1 for item in sample if item <= value) / len(sample)

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._sample.memory_bytes()


class AttpChainKll:
    """ATTP quantiles from checkpoint-chained KLL sketches."""

    def __init__(self, k: int = 200, eps_ckpt: float = 0.05, seed: int = 0):
        self._chain = CheckpointChain(
            functools.partial(KllSketch, k, seed=seed), eps=eps_ckpt
        )
        self.k = k

    @property
    def count(self) -> int:
        return self._chain.count

    def update(self, value: float, timestamp: float) -> None:
        """Insert one value at ``timestamp``."""
        self._chain.update(float(value), timestamp)

    def update_batch(self, values, timestamps) -> None:
        """Bulk insert: checkpoint-exact batched chain ingest."""
        self._chain.update_batch(_float_list(values), timestamps)

    def quantile_at(self, timestamp: float, phi: float) -> float:
        """Estimated phi-quantile of ``A^timestamp``."""
        sketch = self._chain.sketch_at(timestamp)
        if sketch is None:
            raise ValueError("cannot query before the first checkpoint")
        return sketch.quantile(phi)

    def cdf_at(self, timestamp: float, value: float) -> float:
        """Estimated fraction of ``A^timestamp`` at most ``value``."""
        sketch = self._chain.sketch_at(timestamp)
        if sketch is None:
            raise ValueError("cannot query before the first checkpoint")
        return sketch.cdf(value)

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._chain.memory_bytes()


class AttpWeightedQuantiles:
    """ATTP *weighted* quantiles via persistent priority sampling (Thm 3.3).

    Each value carries a positive weight; the phi-quantile at time ``t`` is
    the smallest value ``v`` such that the weight of items ``<= v`` in
    ``A^t`` reaches ``phi`` of the total weight.
    """

    def __init__(self, k: int, seed: int = 0):
        from repro.core.persistent_priority import PersistentPrioritySample

        self._sample = PersistentPrioritySample(k, seed=seed)
        self.k = k

    @property
    def count(self) -> int:
        return self._sample.count

    def update(self, value: float, timestamp: float, weight: float = 1.0) -> None:
        """Insert one weighted value at ``timestamp``."""
        self._sample.update(float(value), timestamp, weight=weight)

    def update_batch(self, values, timestamps, weights=None) -> None:
        """Bulk insert (state- and RNG-identical to repeated :meth:`update`)."""
        self._sample.update_batch(_float_list(values), timestamps, weights)

    def quantile_at(self, timestamp: float, phi: float) -> float:
        """Estimated weighted phi-quantile of ``A^timestamp``."""
        if not 0 <= phi <= 1:
            raise ValueError(f"phi must be in [0, 1], got {phi}")
        pairs = sorted(self._sample.sample_at(timestamp))
        if not pairs:
            raise ValueError("cannot query an empty summary")
        total = sum(weight for _, weight in pairs)
        target = phi * total
        cumulative = 0.0
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= target:
                return value
        return pairs[-1][0]

    def weighted_cdf_at(self, timestamp: float, value: float) -> float:
        """Estimated weighted fraction of ``A^timestamp`` at most ``value``."""
        pairs = self._sample.sample_at(timestamp)
        if not pairs:
            raise ValueError("cannot query an empty summary")
        total = sum(weight for _, weight in pairs)
        below = sum(weight for item, weight in pairs if item <= value)
        return below / total

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._sample.memory_bytes()


class AttpMergeTreeQuantiles:
    """ATTP quantiles: merge tree over KLL sketches (Theorem 5.1, ATTP mode)."""

    def __init__(self, k: int = 200, eps_tree: float = 0.05, block_size: int = 64, seed: int = 0):
        self._tree = MergeTreePersistence(
            functools.partial(KllSketch, k, seed=seed),
            eps=eps_tree,
            mode="attp",
            block_size=block_size,
        )
        self.k = k

    @property
    def count(self) -> int:
        return self._tree.count

    def update(self, value: float, timestamp: float) -> None:
        """Insert one value at ``timestamp``."""
        self._tree.update(float(value), timestamp)

    def update_batch(self, values, timestamps) -> None:
        """Bulk insert: block-exact batched merge-tree ingest."""
        self._tree.update_batch(_float_list(values), timestamps)

    def quantile_at(self, timestamp: float, phi: float) -> float:
        """Estimated phi-quantile of the prefix ``A^timestamp``."""
        merged = self._tree.sketch_at(timestamp)
        return merged.quantile(phi)

    def cdf_at(self, timestamp: float, value: float) -> float:
        """Estimated fraction of the prefix at most ``value``."""
        merged = self._tree.sketch_at(timestamp)
        return merged.cdf(value)

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._tree.memory_bytes()


class BitpMergeTreeQuantiles:
    """BITP quantiles: merge tree over KLL sketches."""

    def __init__(self, k: int = 200, eps_tree: float = 0.05, block_size: int = 64, seed: int = 0):
        self._tree = MergeTreePersistence(
            functools.partial(KllSketch, k, seed=seed),
            eps=eps_tree,
            mode="bitp",
            block_size=block_size,
        )
        self.k = k

    @property
    def count(self) -> int:
        return self._tree.count

    def update(self, value: float, timestamp: float) -> None:
        """Insert one value at ``timestamp``."""
        self._tree.update(float(value), timestamp)

    def update_batch(self, values, timestamps) -> None:
        """Bulk insert: block-exact batched merge-tree ingest."""
        self._tree.update_batch(_float_list(values), timestamps)

    def quantile_since(self, timestamp: float, phi: float) -> float:
        """Estimated phi-quantile of the window ``A[timestamp, now]``."""
        merged = self._tree.sketch_since(timestamp)
        return merged.quantile(phi)

    def cdf_since(self, timestamp: float, value: float) -> float:
        """Estimated fraction of the window at most ``value``."""
        merged = self._tree.sketch_since(timestamp)
        return merged.cdf(value)

    @property
    def peak_memory_bytes(self) -> int:
        return self._tree.peak_memory_bytes

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._tree.memory_bytes()
