"""ATTP kernel density estimates (eps-KDE, Theorem 3.1).

A persistent uniform sample of size ``k = O(eps^-2 log(1/delta))`` preserves
``||kde_A - kde_S||_inf <= eps`` for any positive-definite kernel, at any
prefix of the stream.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.core.base import check_batch_lengths, first_timestamp_violation
from repro.core.persistent_sampling import PersistentTopKSample


def gaussian_kernel(bandwidth: float) -> Callable:
    """``K(x, a) = exp(-||x - a||^2 / (2 h^2))``."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    two_h_sq = 2.0 * bandwidth * bandwidth

    def kernel(x: np.ndarray, a: np.ndarray) -> float:
        diff = x - a
        return math.exp(-float(diff @ diff) / two_h_sq)

    return kernel


def laplace_kernel(bandwidth: float) -> Callable:
    """``K(x, a) = exp(-||x - a||_1 / h)``."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")

    def kernel(x: np.ndarray, a: np.ndarray) -> float:
        return math.exp(-float(np.abs(x - a).sum()) / bandwidth)

    return kernel


class AttpKdeCoreset:
    """ATTP KDE coreset over d-dimensional points."""

    def __init__(self, k: int, dim: int, kernel: Callable = None, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        self.kernel = kernel if kernel is not None else gaussian_kernel(1.0)
        self._sample = PersistentTopKSample(k, seed=seed)
        self.count = 0

    def update(self, point: Sequence[float], timestamp: float) -> None:
        """Insert one point at ``timestamp``."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},), got {point.shape}")
        self.count += 1
        self._sample.update(point, timestamp)

    def update_batch(self, points, timestamps) -> None:
        """Insert many points (an ``(n, dim)`` matrix); state- and
        RNG-identical to a scalar :meth:`update` loop.

        A mid-batch timestamp violation applies the valid prefix, then
        raises the scalar error (the offending point is still counted,
        exactly as the scalar path counts it before the sampler rejects).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise ValueError(
                f"expected points of shape (n, {self.dim}), got {points.shape}"
            )
        timestamp_array = np.asarray(timestamps, dtype=float)
        n = check_batch_lengths(points, timestamp_array)
        if n == 0:
            return
        bad = first_timestamp_violation(self._sample._guard.last, timestamp_array)
        self.count += n if bad < 0 else bad + 1
        self._sample.update_batch(list(points), timestamp_array)

    def kde_at(self, timestamp: float, x: Sequence[float]) -> float:
        """Estimated normalised kernel density of ``A^timestamp`` at ``x``."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dim,):
            raise ValueError(f"expected a query of shape ({self.dim},), got {x.shape}")
        sample = self._sample.sample_at(timestamp)
        if not sample:
            return 0.0
        return sum(self.kernel(x, a) for a in sample) / len(sample)

    def coreset_at(self, timestamp: float) -> list:
        """The sampled points that form the coreset at ``timestamp``."""
        return self._sample.sample_at(timestamp)

    def memory_bytes(self) -> int:
        """Record: d-vector (8d) + sampler bookkeeping (28)."""
        return len(self._sample) * (self.dim * 8 + 28)
