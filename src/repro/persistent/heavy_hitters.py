"""Persistent heavy-hitter sketches (the paper's Section 6.1 / 6.2 lineup).

ATTP (query any prefix ``A^t``):

* :class:`AttpSampleHeavyHitter` — "SAMPLING": persistent top-k uniform
  sample; a key is reported when its sample fraction reaches the threshold.
* :class:`AttpChainMisraGries` — "CMG": elementwise-checkpointed Misra-Gries.
* :class:`AttpChainCountMin` — "CCM": elementwise-checkpointed CountMin
  (point queries / ablations; needs candidates for enumeration).

BITP (query any suffix ``A[t, now]``):

* :class:`BitpSampleHeavyHitter` — "SAMPLING-BITP": batched BITP priority
  sampling with uniform priorities.
* :class:`BitpTreeMisraGries` — "TMG": dyadic merge tree of Misra-Gries
  summaries.
"""

from __future__ import annotations

import functools
from collections import Counter
from typing import List

import numpy as np

from repro.core.base import check_batch_lengths, first_timestamp_violation
from repro.core.bitp_sampling import BitpPrioritySample
from repro.core.checkpoint_chain import apply_int_weighted
from repro.core.elementwise import ChainCountMin, ChainMisraGries
from repro.core.merge_tree import MergeTreePersistence
from repro.core.persistent_sampling import PersistentTopKSample
from repro.core.timeindex import GeometricHistory
from repro.sketches.misra_gries import MisraGries


class AttpSampleHeavyHitter:
    """ATTP heavy hitters from a persistent uniform sample (SAMPLING).

    Keeps a persistent without-replacement sample of size ``k``; at query
    time the sample of the prefix is materialised and a key is reported when
    its sample multiplicity is at least ``phi * |sample|``.  With
    ``k = O(eps^-2 log(1/delta))`` this is an eps-FE summary of any prefix
    (Theorem 3.1).
    """

    def __init__(self, k: int, seed: int = 0):
        self._sample = PersistentTopKSample(k, seed=seed)
        self._count_history = GeometricHistory(delta=0.01)
        self.k = k
        self.count = 0

    def update(self, key: int, timestamp: float) -> None:
        """Insert one occurrence of ``key`` at ``timestamp``."""
        self._sample.update(key, timestamp)
        self.count += 1
        self._count_history.observe(timestamp, float(self.count))

    def update_batch(self, keys, timestamps) -> None:
        """Bulk insert: vectorised sampler ingest plus the count history.

        Equivalent to repeated :meth:`update` (same sample, same RNG
        stream), but the persistent sample ingests the whole batch at once.
        A mid-batch timestamp violation applies (and observes) the valid
        prefix, then raises the scalar error.
        """
        timestamp_array = np.asarray(timestamps, dtype=float)
        n = check_batch_lengths(keys, timestamp_array)
        if n == 0:
            return
        bad = first_timestamp_violation(self._sample._guard.last, timestamp_array)
        limit = n if bad < 0 else bad
        try:
            self._sample.update_batch(keys, timestamp_array)
        finally:
            for index in range(limit):
                self.count += 1
                self._count_history.observe(
                    float(timestamp_array[index]), float(self.count)
                )

    def update_many(self, keys, timestamps) -> None:
        """Backward-compatible alias of :meth:`update_batch`."""
        self.update_batch(keys, timestamps)

    def heavy_hitters_at(self, timestamp: float, phi: float) -> List[int]:
        """Keys with estimated frequency >= ``phi * n(t)`` in ``A^timestamp``."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        sample = self._sample.sample_at(timestamp)
        if not sample:
            return []
        counts = Counter(sample)
        cut = phi * len(sample)
        return sorted(key for key, count in counts.items() if count >= cut)

    def estimate_at(self, key: int, timestamp: float) -> float:
        """Estimated count of ``key`` in ``A^timestamp``."""
        sample = self._sample.sample_at(timestamp)
        if not sample:
            return 0.0
        n_t = self._count_history.value_at(timestamp)
        return sample.count(key) / len(sample) * n_t

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._sample.memory_bytes() + self._count_history.memory_bytes()


class AttpChainMisraGries(ChainMisraGries):
    """ATTP Misra-Gries with elementwise checkpoints (CMG).

    Inherits the full implementation from
    :class:`repro.core.elementwise.ChainMisraGries`; exposed here under the
    paper's name as part of the heavy-hitters public API.
    """


class AttpChainCountMin(ChainCountMin):
    """ATTP CountMin with elementwise checkpoints (CCM).

    See :class:`repro.core.elementwise.ChainCountMin`.
    """


class AttpDyadicChainCountMin:
    """ATTP heavy hitters from a dyadic hierarchy of Chain CountMin sketches.

    ``AttpChainCountMin`` answers point queries but cannot enumerate heavy
    hitters by itself.  Stacking one elementwise-checkpointed CountMin per
    dyadic level of the key universe (the same retrieval structure PCM_HH
    uses, but with the paper's chains instead of piecewise-linear counters)
    yields self-contained enumeration at any historical time — and, being
    built on linear sketches, it also answers FATP-style interval queries by
    differencing.
    """

    def __init__(
        self,
        universe_bits: int,
        eps: float = 0.005,
        depth: int = 3,
        eps_ckpt: float = 0.002,
        seed: int = 0,
    ):
        if universe_bits < 1:
            raise ValueError(f"universe_bits must be >= 1, got {universe_bits}")
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.universe_bits = universe_bits
        width = max(4, int(2.0 / eps))
        self.levels: List[ChainCountMin] = [
            ChainCountMin(width, depth, eps_ckpt=eps_ckpt, seed=seed + level)
            for level in range(universe_bits + 1)
        ]
        self.count = 0

    def update(self, key: int, timestamp: float, weight: int = 1) -> None:
        """Add ``weight`` to ``key`` at ``timestamp`` in every level."""
        if not 0 <= key < (1 << self.universe_bits):
            raise ValueError(
                f"key {key} outside universe [0, 2**{self.universe_bits})"
            )
        self.count += 1
        for level, sketch in enumerate(self.levels):
            sketch.update(key >> level, timestamp, weight)

    def update_batch(self, keys, timestamps, weights=None) -> None:
        """Bulk :meth:`update` (scalar loop; the per-level chains checkpoint
        counter drift item by item, so the work is inherently sequential)."""
        n = check_batch_lengths(keys, timestamps, weights)
        for index in range(n):
            self.update(
                int(keys[index]),
                float(timestamps[index]),
                1 if weights is None else int(weights[index]),
            )

    def total_weight_at(self, timestamp: float) -> float:
        """W(t) from the level-0 chain's weight history."""
        return self.levels[0].total_weight_at(timestamp)

    def estimate_at(self, key: int, timestamp: float) -> float:
        """Point estimate of ``key``'s count in ``A^timestamp``."""
        return self.levels[0].estimate_at(key, timestamp)

    def estimate_between(self, key: int, start: float, end: float) -> float:
        """FATP-style interval estimate (see ChainCountMin)."""
        return self.levels[0].estimate_between(key, start, end)

    def heavy_hitters_at(self, timestamp: float, phi: float) -> List[int]:
        """Keys with estimated prefix count >= ``phi * n(t)``; no candidates
        needed — the dyadic tree is descended, expanding qualifying nodes."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        cut = phi * self.total_weight_at(timestamp)
        if cut <= 0:
            return []
        hitters = []
        frontier = [(self.universe_bits, 0)]
        while frontier:
            level, node = frontier.pop()
            if self.levels[level].estimate_at(node, timestamp) < cut:
                continue
            if level == 0:
                hitters.append(node)
            else:
                frontier.append((level - 1, node * 2))
                frontier.append((level - 1, node * 2 + 1))
        return sorted(hitters)

    def num_checkpoints(self) -> int:
        """Total cell-history entries across all levels."""
        return sum(sketch.num_checkpoints() for sketch in self.levels)

    def memory_bytes(self) -> int:
        """Sum over the per-level chained sketches."""
        return sum(sketch.memory_bytes() for sketch in self.levels)


class BitpSampleHeavyHitter:
    """BITP heavy hitters from batched BITP priority sampling (SAMPLING-BITP)."""

    def __init__(self, k: int, seed: int = 0):
        self._sample = BitpPrioritySample(k, seed=seed)
        self.k = k

    @property
    def count(self) -> int:
        return self._sample.count

    def update(self, key: int, timestamp: float) -> None:
        """Insert one occurrence of ``key`` at ``timestamp``."""
        self._sample.update(key, timestamp, weight=1.0)

    def update_batch(self, keys, timestamps) -> None:
        """Bulk insert (equivalent to repeated :meth:`update`, but faster)."""
        self._sample.update_batch(keys, timestamps)

    def update_many(self, keys, timestamps) -> None:
        """Backward-compatible alias of :meth:`update_batch`."""
        self.update_batch(keys, timestamps)

    def heavy_hitters_since(self, timestamp: float, phi: float) -> List[int]:
        """Keys with estimated frequency >= ``phi * |window|`` in ``A[t, now]``."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        sample = [value for value, _ in self._sample.raw_sample_since(timestamp)]
        if not sample:
            return []
        counts = Counter(sample)
        cut = phi * len(sample)
        return sorted(key for key, count in counts.items() if count >= cut)

    def estimate_since(self, key: int, timestamp: float) -> float:
        """Estimated count of ``key`` in the window ``A[timestamp, now]``."""
        sample = [value for value, _ in self._sample.raw_sample_since(timestamp)]
        if not sample:
            return 0.0
        window = self._sample.suffix_count_since(timestamp)
        return sample.count(key) / len(sample) * window

    @property
    def peak_memory_bytes(self) -> int:
        return self._sample.peak_memory_bytes

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._sample.memory_bytes()


class AttpTreeMisraGries:
    """ATTP Misra-Gries via the dyadic merge tree (Theorem 5.1, ATTP mode).

    The paper evaluates the merge tree in BITP mode (TMG); Theorem 5.1 states
    the same construction with left-spine retention answers prefix queries.
    Included for completeness and the chaining-vs-tree comparison: CMG
    dominates this on space (the paper's Section 5 discussion).
    """

    def __init__(self, eps: float, block_size: int = 64):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.eps = eps
        self._tree = MergeTreePersistence(
            functools.partial(MisraGries.from_error, eps / 2.0),
            eps=eps / 2.0,
            mode="attp",
            block_size=block_size,
            apply_update=apply_int_weighted,
        )

    @property
    def count(self) -> int:
        return self._tree.count

    def update(self, key: int, timestamp: float) -> None:
        """Insert one occurrence of ``key`` at ``timestamp``."""
        self._tree.update(key, timestamp, weight=1)

    def update_batch(self, keys, timestamps) -> None:
        """Bulk insert: block-exact batched merge-tree ingest."""
        self._tree.update_batch(keys, timestamps)

    def heavy_hitters_at(
        self, timestamp: float, phi: float, guarantee_recall: bool = True
    ) -> List[int]:
        """Keys with estimated frequency >= ``phi * n(t)`` in ``A^timestamp``."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        merged = self._tree.sketch_at(timestamp)
        if merged.total_weight == 0:
            return []
        threshold = phi
        if guarantee_recall:
            threshold = max(phi - self.eps, 1e-12)
        return merged.heavy_hitters(threshold)

    def estimate_at(self, key: int, timestamp: float) -> float:
        """Estimated count of ``key`` in ``A^timestamp``."""
        return float(self._tree.sketch_at(timestamp).query(key))

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._tree.memory_bytes()


class BitpTreeMisraGries:
    """BITP Misra-Gries via the dyadic merge tree (TMG, Section 5).

    Guarantees no false negatives when queried with the error margin, at the
    cost of the extra ``1/eps`` space factor the paper discusses.
    """

    def __init__(self, eps: float, block_size: int = 64):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.eps = eps
        # Split the error: half to the MG summaries, half to merge-tree slack.
        self._tree = MergeTreePersistence(
            functools.partial(MisraGries.from_error, eps / 2.0),
            eps=eps / 2.0,
            mode="bitp",
            block_size=block_size,
            apply_update=apply_int_weighted,
        )

    @property
    def count(self) -> int:
        return self._tree.count

    def update(self, key: int, timestamp: float) -> None:
        """Insert one occurrence of ``key`` at ``timestamp``."""
        self._tree.update(key, timestamp, weight=1)

    def update_batch(self, keys, timestamps) -> None:
        """Bulk insert: block-exact batched merge-tree ingest."""
        self._tree.update_batch(keys, timestamps)

    def heavy_hitters_since(
        self, timestamp: float, phi: float, guarantee_recall: bool = True
    ) -> List[int]:
        """Keys with estimated frequency >= ``phi * |window|`` in ``A[t, now]``."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        merged = self._tree.sketch_since(timestamp)
        if merged.total_weight == 0:
            return []
        threshold = phi
        if guarantee_recall:
            # MG underestimates by <= eps/2 and the cover drops <= eps/2.
            threshold = max(phi - self.eps, 1e-12)
        return merged.heavy_hitters(threshold)

    def estimate_since(self, key: int, timestamp: float) -> float:
        """Estimated count of ``key`` in the window ``A[timestamp, now]``."""
        return float(self._tree.sketch_since(timestamp).query(key))

    @property
    def peak_memory_bytes(self) -> int:
        return self._tree.peak_memory_bytes

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._tree.memory_bytes()
