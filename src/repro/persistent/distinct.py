"""Persistent distinct-count sketches.

The paper lists distinct elements among the sketch families its frameworks
extend to (Section 2.2.5); these are the two natural instantiations:

* :class:`AttpKmvDistinct` — ATTP via the Section-3 persistence idea applied
  to a bottom-k (KMV) sketch over hash values: records are death-marked
  instead of deleted, so the k smallest hashes of *any prefix* can be
  replayed.  Estimate at time ``t``: ``(k - 1) / kth_smallest_hash(t)``.
  Duplicates are detected exactly with O(k) state: a hash at or above the
  current k-th minimum can never enter, and one below it is necessarily in
  the current sample already (hash values never change).
* :class:`BitpHllDistinct` — BITP via the merge tree (Section 5) over
  HyperLogLog: "how many distinct keys in the last w seconds, for any w".
"""

from __future__ import annotations

import bisect
import functools
import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.base import TimestampGuard, check_batch_lengths, first_timestamp_violation
from repro.core.merge_tree import MergeTreePersistence
from repro.sketches.hashing import mix64, mix64_array
from repro.sketches.hyperloglog import HyperLogLog

_HASH_RANGE = float(1 << 64)


@dataclass
class _KmvRecord:
    unit: float  # hash mapped to (0, 1]
    birth: float
    death: Optional[float] = None


class AttpKmvDistinct:
    """ATTP k-minimum-values distinct counter over integer keys."""

    def __init__(self, k: int, seed: int = 0):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = k
        self._salt = mix64(seed, 0x9E3779B97F4A7C15)
        self._guard = TimestampGuard()
        self._records: List[_KmvRecord] = []  # birth order
        self._birth_times: List[float] = []
        # Current k smallest units: max-heap (negated) + exact alive set.
        self._heap: List[tuple] = []  # (-unit, record index)
        self._alive_units = set()
        self.count = 0

    def update(self, key: int, timestamp: float) -> None:
        """Observe one key at ``timestamp`` (duplicates are free)."""
        self._guard.check(timestamp)
        self.count += 1
        unit = (mix64(int(key), self._salt) + 1) / _HASH_RANGE  # in (0, 1]
        self._offer(unit, timestamp)

    def update_batch(self, keys, timestamps) -> None:
        """Observe many keys; state-identical to a scalar :meth:`update` loop.

        Hashing is vectorized (:func:`repro.sketches.hashing.mix64_array`);
        the bottom-k offer loop stays sequential because each acceptance can
        move the k-th minimum that gates later items.  On a timestamp
        violation the valid prefix is applied, then the scalar exception is
        raised.
        """
        timestamp_array = np.asarray(timestamps, dtype=float)
        n = check_batch_lengths(keys, timestamp_array)
        if n == 0:
            return
        bad = first_timestamp_violation(self._guard.last, timestamp_array)
        limit = n if bad < 0 else bad
        if limit:
            hashed = mix64_array(np.asarray(keys).astype(np.uint64), self._salt)
            for i in range(limit):
                self.count += 1
                # int(h) + 1 in exact Python arithmetic: float64(h) + 1.0
                # can round differently near representability boundaries.
                self._offer((int(hashed[i]) + 1) / _HASH_RANGE, float(timestamp_array[i]))
            self._guard.last = float(timestamp_array[limit - 1])
        if bad >= 0:
            self._guard.check(float(timestamp_array[bad]))
            raise AssertionError("unreachable: guard.check must raise")

    def _offer(self, unit: float, timestamp: float) -> None:
        if unit in self._alive_units:
            return  # duplicate of a currently-sampled key
        if len(self._heap) >= self.k:
            if unit >= -self._heap[0][0]:
                # Too large to enter now — and hashes are static, so it can
                # never enter a later prefix's bottom-k either.
                return
        record = _KmvRecord(unit=unit, birth=timestamp)
        index = len(self._records)
        self._records.append(record)
        self._birth_times.append(timestamp)
        self._alive_units.add(unit)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-unit, index))
        else:
            _, evicted = heapq.heapreplace(self._heap, (-unit, index))
            self._records[evicted].death = timestamp
            self._alive_units.discard(self._records[evicted].unit)

    def _sample_at(self, timestamp: float) -> List[float]:
        end = bisect.bisect_right(self._birth_times, timestamp)
        return [
            record.unit
            for record in self._records[:end]
            if record.birth <= timestamp
            and (record.death is None or record.death > timestamp)
        ]

    def distinct_at(self, timestamp: float) -> float:
        """Estimated number of distinct keys in ``A^timestamp``.

        Exact (up to hash collisions) while fewer than ``k`` distinct keys
        have arrived; ``(k - 1) / kth_smallest`` afterwards.
        """
        units = self._sample_at(timestamp)
        if len(units) < self.k:
            return float(len(units))
        return (self.k - 1) / max(units)

    def distinct_now(self) -> float:
        """Estimated distinct keys over the whole stream."""
        if len(self._heap) < self.k:
            return float(len(self._heap))
        return (self.k - 1) / (-self._heap[0][0])

    def num_records(self) -> int:
        """KMV records ever kept (alive + death-marked)."""
        return len(self._records)

    def memory_bytes(self) -> int:
        """Record: hash(8) + birth(8) + death(8); alive set: 8 per entry."""
        return len(self._records) * 24 + len(self._alive_units) * 8


class BitpHllDistinct:
    """BITP distinct counter: merge tree over HyperLogLog sketches."""

    def __init__(self, p: int = 12, eps_tree: float = 0.1, block_size: int = 64, seed: int = 0):
        self.p = p
        self._tree = MergeTreePersistence(
            functools.partial(HyperLogLog, p, seed=seed),
            eps=eps_tree,
            mode="bitp",
            block_size=block_size,
        )

    @property
    def count(self) -> int:
        return self._tree.count

    def update(self, key: int, timestamp: float) -> None:
        """Observe one key at ``timestamp``."""
        self._tree.update(key, timestamp)

    def update_batch(self, keys, timestamps) -> None:
        """Bulk insert: block-exact batched merge-tree ingest (vectorized
        HyperLogLog register updates within each leaf block)."""
        self._tree.update_batch(keys, timestamps)

    def distinct_since(self, timestamp: float) -> float:
        """Estimated distinct keys in the window ``A[timestamp, now]``."""
        merged = self._tree.sketch_since(timestamp)
        return merged.estimate()

    @property
    def peak_memory_bytes(self) -> int:
        return self._tree.peak_memory_bytes

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._tree.memory_bytes()
