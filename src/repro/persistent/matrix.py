"""Persistent matrix-covariance (eps-MC) sketches (Section 6.3 lineup).

* :class:`AttpNormSampling` — "NS": persistent priority sampling with weight
  ``||a_i||^2`` (weighted without replacement, Section 3.1).
* :class:`AttpNormSamplingWR` — "NSWR": persistent weighted with-replacement
  chains with the same weights.
* :class:`AttpPersistentFrequentDirections` — "PFD": Algorithm 1 (re-exported
  from :mod:`repro.core.pfd`).
* :class:`BitpFrequentDirections` — BITP eps-MC via the merge tree over
  Frequent Directions (Theorem 5.1).

All estimators return a ``d x d`` covariance estimate of ``A(t)^T A(t)``
whose spectral error is bounded relative to ``||A(t)||_F^2``.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.core.base import (
    check_batch_lengths,
    check_finite_row,
    first_timestamp_violation,
)
from repro.core.checkpoint_chain import apply_value_only
from repro.core.merge_tree import MergeTreePersistence
from repro.core.persistent_priority import PersistentPrioritySample, PersistentWeightedWR
from repro.core.pfd import PersistentFrequentDirections
from repro.sketches.frequent_directions import FastFrequentDirections


class AttpNormSampling:
    """ATTP norm sampling: weighted without-replacement row sample (NS).

    Rows are sampled with probability proportional to their squared norm; the
    covariance estimator rescales each sampled row by its adjusted weight, so
    ``E[estimate] = A(t)^T A(t)`` with spectral error ``eps * ||A(t)||_F^2``
    for ``k = O(d / eps^2)`` rows (Theorem 3.3).
    """

    def __init__(self, k: int, dim: int, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        self._sample = PersistentPrioritySample(k, seed=seed)
        self.count = 0

    def update(self, row: np.ndarray, timestamp: float) -> None:
        """Append one d-dimensional row at ``timestamp``."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.dim,):
            raise ValueError(f"expected a row of shape ({self.dim},), got {row.shape}")
        check_finite_row(row)
        norm_sq = float(row @ row)
        if norm_sq == 0.0:
            return  # zero rows carry no covariance mass
        self.count += 1
        self._sample.update(row, timestamp, weight=norm_sq)

    def update_batch(self, rows, timestamps) -> None:
        """Append many rows (an ``(n, dim)`` matrix); state- and
        RNG-identical to a scalar :meth:`update` loop.

        Norms are computed with the scalar ``row @ row`` (not a reassociated
        ``einsum``) so sampled weights are bit-identical; zero-norm rows are
        dropped exactly as the scalar path drops them.  A mid-batch
        non-finite row or timestamp violation applies the valid prefix,
        then raises the scalar error.
        """
        prepared = _prepare_row_batch(self._sample, self.dim, rows, timestamps)
        if prepared is None:
            return
        rows, timestamp_array, kept, norms, count_delta, bad_finite = prepared
        self.count += count_delta
        self._sample.update_batch(
            [rows[i] for i in kept], timestamp_array[kept], [norms[i] for i in kept]
        )
        if bad_finite >= 0:
            check_finite_row(rows[bad_finite])
            raise AssertionError("unreachable: check_finite_row must raise")

    def sketch_rows_at(self, timestamp: float) -> np.ndarray:
        """Row matrix ``B`` with ``B^T B`` = the covariance estimate at ``t``."""
        pairs = self._sample.sample_at(timestamp)
        if not pairs:
            return np.zeros((0, self.dim))
        rows = []
        for row, adjusted in pairs:
            norm_sq = float(row @ row)
            rows.append(row * np.sqrt(adjusted / norm_sq))
        return np.vstack(rows)

    def covariance_at(self, timestamp: float) -> np.ndarray:
        """Unbiased estimate of ``A(t)^T A(t)``."""
        b = self.sketch_rows_at(timestamp)
        return b.T @ b

    def num_records(self) -> int:
        """Records ever kept by the persistent sampler."""
        return len(self._sample)

    def memory_bytes(self) -> int:
        """Each record stores a d-vector (8d) plus sampler bookkeeping (28)."""
        return self.num_records() * (self.dim * 8 + 28)


class AttpNormSamplingWR:
    """ATTP norm sampling with replacement (NSWR): k independent chains."""

    def __init__(self, k: int, dim: int, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        self._sample = PersistentWeightedWR(k, seed=seed)
        self.count = 0

    def update(self, row: np.ndarray, timestamp: float) -> None:
        """Append one d-dimensional row at ``timestamp``."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.dim,):
            raise ValueError(f"expected a row of shape ({self.dim},), got {row.shape}")
        check_finite_row(row)
        norm_sq = float(row @ row)
        if norm_sq == 0.0:
            return
        self.count += 1
        self._sample.update(row, timestamp, weight=norm_sq)

    def update_batch(self, rows, timestamps) -> None:
        """Append many rows (an ``(n, dim)`` matrix); state- and
        RNG-identical to a scalar :meth:`update` loop (see
        :meth:`AttpNormSampling.update_batch` for the exactness notes).
        """
        prepared = _prepare_row_batch(self._sample, self.dim, rows, timestamps)
        if prepared is None:
            return
        rows, timestamp_array, kept, norms, count_delta, bad_finite = prepared
        self.count += count_delta
        self._sample.update_batch(
            [rows[i] for i in kept], timestamp_array[kept], [norms[i] for i in kept]
        )
        if bad_finite >= 0:
            check_finite_row(rows[bad_finite])
            raise AssertionError("unreachable: check_finite_row must raise")

    def sketch_rows_at(self, timestamp: float) -> np.ndarray:
        """Row matrix ``B`` with ``B^T B`` = the covariance estimate at ``t``."""
        pairs = self._sample.sample_at(timestamp)
        if not pairs:
            return np.zeros((0, self.dim))
        w_t = self._sample.total_weight_at(timestamp)  # = ||A(t)||_F^2 (approx)
        scale = w_t / len(pairs)
        rows = []
        for row, norm_sq in pairs:
            rows.append(row * np.sqrt(scale / norm_sq))
        return np.vstack(rows)

    def covariance_at(self, timestamp: float) -> np.ndarray:
        """Estimate of ``A(t)^T A(t)``: ``(W(t)/k) * sum a a^T / ||a||^2``."""
        b = self.sketch_rows_at(timestamp)
        return b.T @ b

    def num_records(self) -> int:
        """Records ever kept across the sampler chains."""
        return self._sample.total_records()

    def memory_bytes(self) -> int:
        """Each record stores a d-vector (8d) plus chain bookkeeping (16)."""
        return self.num_records() * (self.dim * 8 + 16)


class AttpPersistentFrequentDirections(PersistentFrequentDirections):
    """ATTP Frequent Directions (PFD, Algorithm 1).

    Re-exported from :mod:`repro.core.pfd` under the Section 6.3 name.
    """


class BitpFrequentDirections:
    """BITP eps-MC sketch: merge tree of Frequent Directions summaries."""

    def __init__(self, ell: int, dim: int, eps_tree: float = 0.1, block_size: int = 32):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.ell = ell
        self.dim = dim
        self._tree = MergeTreePersistence(
            functools.partial(FastFrequentDirections, ell, dim),
            eps=eps_tree,
            mode="bitp",
            block_size=block_size,
            apply_update=apply_value_only,
        )

    @property
    def count(self) -> int:
        return self._tree.count

    def update(self, row: np.ndarray, timestamp: float) -> None:
        """Append one d-dimensional row at ``timestamp``."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.dim,):
            raise ValueError(f"expected a row of shape ({self.dim},), got {row.shape}")
        self._tree.update(row, timestamp)

    def update_batch(self, rows, timestamps) -> None:
        """Append many rows (an ``(n, dim)`` matrix): block-exact batched
        merge-tree ingest."""
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != self.dim:
            raise ValueError(
                f"expected rows of shape (n, {self.dim}), got {rows.shape}"
            )
        self._tree.update_batch(list(rows), timestamps)

    def covariance_since(self, timestamp: float) -> np.ndarray:
        """Estimate of the window covariance ``A[t, now]^T A[t, now]``."""
        merged = self._tree.sketch_since(timestamp)
        return merged.covariance()

    @property
    def peak_memory_bytes(self) -> int:
        return self._tree.peak_memory_bytes

    def memory_bytes(self) -> int:
        """Modelled C-layout footprint (see repro.evaluation.memory)."""
        return self._tree.memory_bytes()


def _prepare_row_batch(sampler, dim, rows, timestamps):
    """Validate a row batch against the scalar path's per-row semantics.

    Returns ``(rows, timestamp_array, kept, norms, count_delta, bad_finite)``
    or ``None`` for an empty batch.  ``kept`` holds the indices before the
    first non-finite row whose norm is non-zero; ``count_delta`` is how far
    the wrapper's ``count`` advances — including the row the sampler is
    about to reject on a timestamp violation, which the scalar loop counts
    *before* the sampler raises.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2 or rows.shape[1] != dim:
        raise ValueError(f"expected rows of shape (n, {dim}), got {rows.shape}")
    timestamp_array = np.asarray(timestamps, dtype=float)
    n = check_batch_lengths(rows, timestamp_array)
    if n == 0:
        return None
    finite = np.isfinite(rows).all(axis=1)
    bad_finite = -1 if bool(finite.all()) else int(np.argmin(finite))
    stop = n if bad_finite < 0 else bad_finite
    # Scalar order and precision: row @ row per row, no reassociation.
    norms = [float(row @ row) for row in rows[:stop]]
    kept = [index for index in range(stop) if norms[index] != 0.0]
    bad_time = (
        first_timestamp_violation(sampler._guard.last, timestamp_array[kept])
        if kept
        else -1
    )
    count_delta = len(kept) if bad_time < 0 else bad_time + 1
    return rows, timestamp_array, kept, norms, count_delta, bad_finite
