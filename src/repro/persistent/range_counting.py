"""ATTP approximate range counting (eps-ARC, Theorem 3.1 / 3.3).

A persistent uniform sample of size ``k = O(eps^-2 (v + log(1/delta)))`` is
an eps-ARC summary of any prefix for ranges of VC-dimension ``v`` — here
axis-aligned rectangles (``v = 2d``).  The weighted variant supports
importance-weighted points (Theorem 3.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.base import (
    check_batch_lengths,
    first_invalid_weight,
    first_timestamp_violation,
)
from repro.core.persistent_priority import PersistentPrioritySample
from repro.core.persistent_sampling import PersistentTopKSample
from repro.core.timeindex import GeometricHistory


def _in_rect(point: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> bool:
    return bool(np.all(point >= lo) and np.all(point <= hi))


class AttpRangeCounting:
    """ATTP range counting over d-dimensional points, axis-aligned ranges."""

    def __init__(self, k: int, dim: int, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        self._sample = PersistentTopKSample(k, seed=seed)
        self._count_history = GeometricHistory(delta=0.01)
        self.count = 0

    def update(self, point: Sequence[float], timestamp: float) -> None:
        """Insert one point at ``timestamp``."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},), got {point.shape}")
        self.count += 1
        self._sample.update(point, timestamp)
        self._count_history.observe(timestamp, float(self.count))

    def update_batch(self, points, timestamps) -> None:
        """Insert many points (an ``(n, dim)`` matrix); state- and
        RNG-identical to a scalar :meth:`update` loop, count history
        included.  A mid-batch timestamp violation applies (and observes)
        the valid prefix, then raises the scalar error.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise ValueError(
                f"expected points of shape (n, {self.dim}), got {points.shape}"
            )
        timestamp_array = np.asarray(timestamps, dtype=float)
        n = check_batch_lengths(points, timestamp_array)
        if n == 0:
            return
        bad = first_timestamp_violation(self._sample._guard.last, timestamp_array)
        limit = n if bad < 0 else bad
        base = self.count
        # The scalar loop counts the offending point before the sampler
        # rejects it, but never observes it in the count history.
        self.count += n if bad < 0 else bad + 1
        try:
            self._sample.update_batch(list(points), timestamp_array)
        finally:
            for index in range(limit):
                self._count_history.observe(
                    float(timestamp_array[index]), float(base + index + 1)
                )

    def range_count_at(
        self, timestamp: float, lo: Sequence[float], hi: Sequence[float]
    ) -> float:
        """Estimated number of points of ``A^timestamp`` inside ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if np.any(lo > hi):
            raise ValueError("range is empty: lo > hi in some coordinate")
        sample = self._sample.sample_at(timestamp)
        if not sample:
            return 0.0
        hits = sum(1 for point in sample if _in_rect(point, lo, hi))
        return hits / len(sample) * self._count_history.value_at(timestamp)

    def range_fraction_at(
        self, timestamp: float, lo: Sequence[float], hi: Sequence[float]
    ) -> float:
        """Estimated fraction of points of ``A^timestamp`` inside ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        sample = self._sample.sample_at(timestamp)
        if not sample:
            return 0.0
        return sum(1 for point in sample if _in_rect(point, lo, hi)) / len(sample)

    def memory_bytes(self) -> int:
        """Record: d-vector (8d) + sampler bookkeeping (28)."""
        return len(self._sample) * (self.dim * 8 + 28) + self._count_history.memory_bytes()


class AttpWeightedRangeCounting:
    """ATTP weighted range counting: point weights via priority sampling."""

    def __init__(self, k: int, dim: int, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        self._sample = PersistentPrioritySample(k, seed=seed)
        self.count = 0

    def update(self, point: Sequence[float], timestamp: float, weight: float = 1.0) -> None:
        """Insert one weighted point at ``timestamp``."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},), got {point.shape}")
        self.count += 1
        self._sample.update(point, timestamp, weight=weight)

    def update_batch(self, points, timestamps, weights=None) -> None:
        """Insert many weighted points (an ``(n, dim)`` matrix); state- and
        RNG-identical to a scalar :meth:`update` loop.  A mid-batch weight
        or timestamp violation applies the valid prefix, then raises the
        scalar error (the offending point is still counted, as in the
        scalar path).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise ValueError(
                f"expected points of shape (n, {self.dim}), got {points.shape}"
            )
        timestamp_array = np.asarray(timestamps, dtype=float)
        n = check_batch_lengths(points, timestamp_array, weights)
        if n == 0:
            return
        weight_array = (
            np.ones(n, dtype=float)
            if weights is None
            else np.asarray(weights, dtype=float)
        )
        bad_weight = first_invalid_weight(weight_array)
        bad_time = first_timestamp_violation(self._sample._guard.last, timestamp_array)
        candidates = [index for index in (bad_weight, bad_time) if index >= 0]
        bad = min(candidates) if candidates else -1
        self.count += n if bad < 0 else bad + 1
        self._sample.update_batch(list(points), timestamp_array, weight_array)

    def range_weight_at(
        self, timestamp: float, lo: Sequence[float], hi: Sequence[float]
    ) -> float:
        """Estimated total weight of points of ``A^timestamp`` inside ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if np.any(lo > hi):
            raise ValueError("range is empty: lo > hi in some coordinate")
        return self._sample.estimate_subset_sum_at(
            timestamp, lambda point: _in_rect(point, lo, hi)
        )

    def memory_bytes(self) -> int:
        """Record: d-vector (8d) + sampler bookkeeping (36)."""
        return len(self._sample) * (self.dim * 8 + 36)
