"""ATTP approximate range counting (eps-ARC, Theorem 3.1 / 3.3).

A persistent uniform sample of size ``k = O(eps^-2 (v + log(1/delta)))`` is
an eps-ARC summary of any prefix for ranges of VC-dimension ``v`` — here
axis-aligned rectangles (``v = 2d``).  The weighted variant supports
importance-weighted points (Theorem 3.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.persistent_priority import PersistentPrioritySample
from repro.core.persistent_sampling import PersistentTopKSample
from repro.core.timeindex import GeometricHistory


def _in_rect(point: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> bool:
    return bool(np.all(point >= lo) and np.all(point <= hi))


class AttpRangeCounting:
    """ATTP range counting over d-dimensional points, axis-aligned ranges."""

    def __init__(self, k: int, dim: int, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        self._sample = PersistentTopKSample(k, seed=seed)
        self._count_history = GeometricHistory(delta=0.01)
        self.count = 0

    def update(self, point: Sequence[float], timestamp: float) -> None:
        """Insert one point at ``timestamp``."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},), got {point.shape}")
        self.count += 1
        self._sample.update(point, timestamp)
        self._count_history.observe(timestamp, float(self.count))

    def range_count_at(
        self, timestamp: float, lo: Sequence[float], hi: Sequence[float]
    ) -> float:
        """Estimated number of points of ``A^timestamp`` inside ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if np.any(lo > hi):
            raise ValueError("range is empty: lo > hi in some coordinate")
        sample = self._sample.sample_at(timestamp)
        if not sample:
            return 0.0
        hits = sum(1 for point in sample if _in_rect(point, lo, hi))
        return hits / len(sample) * self._count_history.value_at(timestamp)

    def range_fraction_at(
        self, timestamp: float, lo: Sequence[float], hi: Sequence[float]
    ) -> float:
        """Estimated fraction of points of ``A^timestamp`` inside ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        sample = self._sample.sample_at(timestamp)
        if not sample:
            return 0.0
        return sum(1 for point in sample if _in_rect(point, lo, hi)) / len(sample)

    def memory_bytes(self) -> int:
        """Record: d-vector (8d) + sampler bookkeeping (28)."""
        return len(self._sample) * (self.dim * 8 + 28) + self._count_history.memory_bytes()


class AttpWeightedRangeCounting:
    """ATTP weighted range counting: point weights via priority sampling."""

    def __init__(self, k: int, dim: int, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        self._sample = PersistentPrioritySample(k, seed=seed)
        self.count = 0

    def update(self, point: Sequence[float], timestamp: float, weight: float = 1.0) -> None:
        """Insert one weighted point at ``timestamp``."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},), got {point.shape}")
        self.count += 1
        self._sample.update(point, timestamp, weight=weight)

    def range_weight_at(
        self, timestamp: float, lo: Sequence[float], hi: Sequence[float]
    ) -> float:
        """Estimated total weight of points of ``A^timestamp`` inside ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if np.any(lo > hi):
            raise ValueError("range is empty: lo > hi in some coordinate")
        return self._sample.estimate_subset_sum_at(
            timestamp, lambda point: _in_rect(point, lo, hi)
        )

    def memory_bytes(self) -> int:
        """Record: d-vector (8d) + sampler bookkeeping (36)."""
        return len(self._sample) * (self.dim * 8 + 36)
