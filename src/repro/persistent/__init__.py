"""Problem-level persistent sketches — the library's main public API.

Heavy hitters: SAMPLING / CMG / CCM (ATTP), SAMPLING-BITP / TMG (BITP).
Matrix covariance: NS / NSWR / PFD (ATTP), merge-tree FD (BITP).
Quantiles, range counting and KDE via persistent samples and chains.

Every sketch here ingests through a deterministic, seeded update path, so
all of them can be wrapped in :class:`repro.durability.DurableSketch` for
crash-safe ingestion (write-ahead log + snapshots + exact replay recovery)
— see ``docs/API.md`` ("Durability & crash recovery") and
``examples/crash_recovery.py``.
"""

from repro.persistent.heavy_hitters import (
    AttpChainCountMin,
    AttpChainMisraGries,
    AttpDyadicChainCountMin,
    AttpSampleHeavyHitter,
    AttpTreeMisraGries,
    BitpSampleHeavyHitter,
    BitpTreeMisraGries,
)
from repro.persistent.distinct import AttpKmvDistinct, BitpHllDistinct
from repro.persistent.kde import AttpKdeCoreset, gaussian_kernel, laplace_kernel
from repro.persistent.membership import AttpBloomMembership, BitpBloomMembership
from repro.persistent.matrix import (
    AttpNormSampling,
    AttpNormSamplingWR,
    AttpPersistentFrequentDirections,
    BitpFrequentDirections,
)
from repro.persistent.quantiles import (
    AttpChainKll,
    AttpMergeTreeQuantiles,
    AttpSampleQuantiles,
    AttpWeightedQuantiles,
    BitpMergeTreeQuantiles,
)
from repro.persistent.range_counting import AttpRangeCounting, AttpWeightedRangeCounting

__all__ = [
    "AttpBloomMembership",
    "AttpChainCountMin",
    "AttpChainMisraGries",
    "AttpChainKll",
    "AttpDyadicChainCountMin",
    "AttpKdeCoreset",
    "AttpMergeTreeQuantiles",
    "AttpKmvDistinct",
    "AttpNormSampling",
    "AttpNormSamplingWR",
    "AttpPersistentFrequentDirections",
    "AttpRangeCounting",
    "AttpSampleHeavyHitter",
    "AttpSampleQuantiles",
    "AttpTreeMisraGries",
    "AttpWeightedQuantiles",
    "AttpWeightedRangeCounting",
    "BitpBloomMembership",
    "BitpFrequentDirections",
    "BitpHllDistinct",
    "BitpMergeTreeQuantiles",
    "BitpSampleHeavyHitter",
    "BitpTreeMisraGries",
    "gaussian_kernel",
    "laplace_kernel",
]
