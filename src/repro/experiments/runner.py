"""Dispatch table and CLI for the figure experiments.

``python -m repro.experiments list`` shows the available experiments;
``python -m repro.experiments fig02`` runs one; ``all`` runs everything.
The heavy-hitter and matrix sweeps are cached per process, so running
``fig02 fig04`` costs one sweep, not two.
"""

from __future__ import annotations

import argparse
import functools
import time
from typing import Callable, Dict

from repro.evaluation import figures as f


def _attp_hh(dataset: str, figure: str, what: str):
    rows = f.attp_hh_sweep(dataset)
    f.record_figure(
        figure,
        f"Figure {figure[3:]}: ATTP HH {what} ({dataset})",
        f.HH_COLUMNS,
        f.hh_rows_to_table(rows),
    )
    return rows


def _bitp_hh(dataset: str, figure: str, what: str):
    rows = f.bitp_hh_sweep(dataset)
    f.record_figure(
        figure,
        f"Figure {figure[3:]}: BITP HH {what} ({dataset})",
        f.HH_COLUMNS,
        f.hh_rows_to_table(rows),
    )
    return rows


def _matrix(size: str, figure: str, with_error: bool = True):
    rows = f.matrix_sweep(size, with_error)
    columns = f.MATRIX_COLUMNS if with_error else f.MATRIX_COLUMNS[:-1]
    table = f.matrix_rows_to_table(rows)
    if not with_error:
        table = [row[:-1] for row in table]
    f.record_figure(
        figure,
        f"Figure {figure[3:]}: ATTP matrix sweep ({size}-dim)",
        columns,
        table,
    )
    return rows


def _fig01():
    from repro.baselines import ColumnarLogStore, WindowedAggregateStore
    from repro.evaluation import memory_of, mib
    from repro.persistent import AttpChainMisraGries, AttpSampleHeavyHitter

    sizes = (25_000, 50_000, 100_000, 200_000)
    stream = f.object_stream(max(sizes))
    systems = {
        "SAMPLING": AttpSampleHeavyHitter(k=1_000, seed=0),
        "CMG": AttpChainMisraGries(eps=2e-3),
        "VERTICA": ColumnarLogStore(chunk_rows=1_024),
        "VERTICA_WINDOWED_AGG": WindowedAggregateStore(window_length=5_000.0),
    }
    keys = stream.keys.tolist()
    times = stream.timestamps.tolist()
    rows = []
    cursor = 0
    for n in sizes:
        for index in range(cursor, n):
            for system in systems.values():
                system.update(keys[index], times[index])
        cursor = n
        t_query = times[n - 1]
        for name, system in systems.items():
            start = time.perf_counter()
            system.heavy_hitters_at(t_query, f.PHI_OBJECT)
            elapsed = time.perf_counter() - start
            rows.append([n, name, round(mib(memory_of(system)), 4),
                         round(elapsed * 1e3, 3)])
    f.record_figure(
        "fig01",
        "Figure 1: memory (MiB) and HH query time (ms) vs number of logs",
        ["logs", "system", "memory_MiB", "query_ms"],
        rows,
    )
    return rows


def _fig03():
    from repro.baselines import PcmHeavyHitter
    from repro.persistent import AttpChainMisraGries, AttpSampleHeavyHitter

    out = []
    for dataset, stream_fn, bits in (
        ("client", f.client_stream, 15),
        ("object", f.object_stream, 14),
    ):
        builders = {
            "SAMPLING(k=500)": functools.partial(AttpSampleHeavyHitter, k=500, seed=0),
            "CMG(eps=1e-3)": functools.partial(AttpChainMisraGries, eps=1e-3),
            "PCM_HH(eps=8e-3)": functools.partial(
                PcmHeavyHitter, universe_bits=bits, eps=8e-3, depth=3, pla_delta=8.0
            ),
        }
        checkpoints, series = f.log_scaling_series(stream_fn(), builders)
        rows = [
            [dataset, n, name, round(series[name][position], 4)]
            for position, n in enumerate(checkpoints)
            for name in series
        ]
        f.record_figure(
            f"fig03_{dataset}",
            f"Figure 3 ({dataset}): ATTP HH memory (MiB) vs stream size",
            ["dataset", "stream_size", "sketch", "memory_MiB"],
            rows,
        )
        out.append(rows)
    return out


def _fig08():
    from repro.baselines import PcmHeavyHitter
    from repro.persistent import BitpSampleHeavyHitter, BitpTreeMisraGries

    out = []
    for dataset, stream_fn, bits in (
        ("client", f.client_stream, 15),
        ("object", f.object_stream, 14),
    ):
        builders = {
            "SAMPLING(k=500)": functools.partial(BitpSampleHeavyHitter, k=500, seed=0),
            "TMG(eps=2e-3)": functools.partial(
                BitpTreeMisraGries, eps=2e-3, block_size=64
            ),
            "PCM_HH(eps=8e-3)": functools.partial(
                PcmHeavyHitter, universe_bits=bits, eps=8e-3, depth=3, pla_delta=8.0
            ),
        }
        checkpoints, series = f.log_scaling_series(stream_fn(), builders)
        rows = [
            [dataset, n, name, round(series[name][position], 4)]
            for position, n in enumerate(checkpoints)
            for name in series
        ]
        f.record_figure(
            f"fig08_{dataset}",
            f"Figure 8 ({dataset}): BITP HH peak memory (MiB) vs stream size",
            ["dataset", "stream_size", "sketch", "memory_MiB"],
            rows,
        )
        out.append(rows)
    return out


def _fig12():
    from repro.persistent import (
        AttpNormSampling,
        AttpNormSamplingWR,
        AttpPersistentFrequentDirections,
    )

    out = []
    for size in ("low", "medium", "high"):
        dim, n = f.MATRIX_DIMS[size]
        builders = {
            "PFD(ell=20)": functools.partial(
                AttpPersistentFrequentDirections, ell=20, dim=dim
            ),
            "NS(k=150)": functools.partial(AttpNormSampling, k=150, dim=dim, seed=0),
            "NSWR(k=150)": functools.partial(
                AttpNormSamplingWR, k=150, dim=dim, seed=0
            ),
        }
        checkpoints, series = f.matrix_scaling_series(f.matrix_stream(dim, n), builders)
        rows = [
            [size, count, name, round(series[name][position], 4)]
            for position, count in enumerate(checkpoints)
            for name in series
        ]
        f.record_figure(
            f"fig12_{size}",
            f"Figure 12 ({size}-dim): ATTP matrix memory (MiB) vs stream size",
            ["dataset", "stream_size", "sketch", "memory_MiB"],
            rows,
        )
        out.append(rows)
    return out


EXPERIMENTS: Dict[str, Callable] = {
    "fig01": _fig01,
    "fig02": functools.partial(_attp_hh, "client", "fig02", "precision/recall vs memory"),
    "fig03": _fig03,
    "fig04": functools.partial(_attp_hh, "client", "fig04", "update/query time vs memory"),
    "fig05": functools.partial(_attp_hh, "object", "fig05", "precision/recall vs memory"),
    "fig06": functools.partial(_attp_hh, "object", "fig06", "update/query time vs memory"),
    "fig07": functools.partial(_bitp_hh, "client", "fig07", "precision/recall vs memory"),
    "fig08": _fig08,
    "fig09": functools.partial(_bitp_hh, "client", "fig09", "update/query time vs memory"),
    "fig10": functools.partial(_bitp_hh, "object", "fig10", "precision/recall vs memory"),
    "fig11": functools.partial(_bitp_hh, "object", "fig11", "update/query time vs memory"),
    "fig12": _fig12,
    "fig13": functools.partial(_matrix, "low", "fig13_low"),
    "fig14": functools.partial(_matrix, "low", "fig14"),
    "fig15": functools.partial(_matrix, "medium", "fig15"),
    "fig16": functools.partial(_matrix, "high", "fig16", False),
}


def run_experiment(name: str):
    """Run one named experiment; returns its raw rows."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name]()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures from the library.",
    )
    parser.add_argument(
        "names",
        nargs="+",
        help="experiment names (fig01..fig16), 'all', or 'list'",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write the series files into (default: print only)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable telemetry; with --out, each figure also gets a "
        "<name>_telemetry.jsonl snapshot (docs/OBSERVABILITY.md)",
    )
    args = parser.parse_args(argv)

    if args.names == ["list"]:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.telemetry:
        from repro.telemetry.registry import TELEMETRY

        TELEMETRY.enable()
    if args.out:
        f.set_results_dir(args.out)
    names = sorted(EXPERIMENTS) if args.names == ["all"] else args.names
    for name in names:
        start = time.perf_counter()
        run_experiment(name)
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]")
    return 0
