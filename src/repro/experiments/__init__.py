"""Named experiment runners: ``python -m repro.experiments <name>``.

Each runner regenerates one paper figure's series (same machinery as the
pytest benches, minus the shape assertions) and prints it; with ``--out DIR``
the series is also written as a tab-separated file.
"""

from repro.experiments.runner import EXPERIMENTS, main, run_experiment

__all__ = ["EXPERIMENTS", "main", "run_experiment"]
