"""Entry point: ``python -m repro.experiments <names> [--out DIR]``."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
