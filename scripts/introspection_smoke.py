"""CI smoke: the live introspection server answers over real HTTP.

Starts a sharded service with telemetry enabled, ingests a traced workload,
serves introspection on an ephemeral port, then hits it with ``curl`` from
a real subprocess: ``/healthz`` must answer 200 with a healthy payload and
the ``/metrics`` body must be byte-identical to the in-process
``prometheus_text()`` rendering; with a poller and alert engine attached,
``/timeseries`` and ``/alerts`` must answer well-formed non-empty JSON and
``/dashboard`` a self-contained HTML page.  Then stands up a
``MultiTenantService`` and curls ``/tenants``, which must agree with the
in-process ``tenants()`` fleet summary.  Exits non-zero (with a diff) on
any mismatch.  Run from the repo root::

    PYTHONPATH=src python scripts/introspection_smoke.py

The poller is ticked *manually* (never started): a background tick landing
between the ``/metrics`` scrape and the ``prometheus_text()`` render would
break the byte-identity check.
"""

import difflib
import json
import subprocess
import sys

import numpy as np

from repro.core import ChainMisraGries
from repro.service import MultiTenantService, ShardedSketchService
from repro.telemetry import (
    ALERT_STATES,
    AlertEngine,
    MetricPoller,
    default_service_rules,
    export,
)
from repro.telemetry.registry import TELEMETRY


def curl(url: str) -> str:
    """GET ``url`` with curl; raises on network errors and non-2xx codes."""
    return subprocess.run(
        ["curl", "-fsS", url], check=True, capture_output=True, text=True
    ).stdout


def main() -> int:
    TELEMETRY.enable()
    with ShardedSketchService(
        lambda: ChainMisraGries(eps=0.01), num_shards=2
    ) as service:
        service.ingest_batch(list(range(200)), [float(t) for t in range(200)])
        if not service.drain(timeout=30):
            print("FAIL: service did not drain", file=sys.stderr)
            return 1
        service.estimate_at(3, 100.0)

        poller = MetricPoller(interval=1.0, capacity=16)
        engine = AlertEngine(default_service_rules(), poller=poller)
        poller.tick()  # manual ticks only — see the module docstring
        poller.tick()

        with service.serve_introspection(poller=poller, alerts=engine) as server:
            health = json.loads(curl(server.url + "/healthz"))
            if health.get("healthy") is not True:
                print(f"FAIL: /healthz unhealthy: {health}", file=sys.stderr)
                return 1
            print(f"PASS /healthz 200 healthy (watermark={health['watermark']})")

            scraped = curl(server.url + "/metrics")
            expected = export.prometheus_text()
            if scraped != expected:
                diff = "\n".join(
                    difflib.unified_diff(
                        expected.splitlines(),
                        scraped.splitlines(),
                        "prometheus_text()",
                        "GET /metrics",
                        lineterm="",
                    )
                )
                print(f"FAIL: /metrics differs:\n{diff}", file=sys.stderr)
                return 1
            lines = len(scraped.splitlines())
            print(f"PASS /metrics identical to prometheus_text() ({lines} lines)")

            timeseries = json.loads(curl(server.url + "/timeseries"))
            if timeseries["series_count"] < 1 or not timeseries["series"]:
                print(f"FAIL: /timeseries empty: {timeseries}", file=sys.stderr)
                return 1
            names = {entry["name"] for entry in timeseries["series"]}
            if "service_ingest_items_total" not in names:
                print(
                    f"FAIL: /timeseries missing ingest series: {sorted(names)}",
                    file=sys.stderr,
                )
                return 1
            if timeseries["ticks"] != poller.ticks:
                print(f"FAIL: /timeseries tick drift: {timeseries['ticks']}",
                      file=sys.stderr)
                return 1
            print(
                f"PASS /timeseries well-formed "
                f"({timeseries['series_count']} series, "
                f"{timeseries['ticks']} ticks)"
            )

            alerts = json.loads(curl(server.url + "/alerts"))
            if not alerts["rules"]:
                print(f"FAIL: /alerts has no rules: {alerts}", file=sys.stderr)
                return 1
            bad_states = [
                rule["name"] for rule in alerts["rules"]
                if rule["state"] not in ALERT_STATES
            ]
            if bad_states:
                print(f"FAIL: /alerts bad states: {bad_states}", file=sys.stderr)
                return 1
            health = json.loads(curl(server.url + "/healthz"))
            if health.get("alerts", {}).get("rules") != len(alerts["rules"]):
                print(f"FAIL: /healthz missing alert fold: {health}",
                      file=sys.stderr)
                return 1
            print(
                f"PASS /alerts well-formed ({len(alerts['rules'])} rules, "
                f"{alerts['firing']} firing) and folded into /healthz"
            )

            dashboard = curl(server.url + "/dashboard")
            if (not dashboard.startswith("<!doctype html>")
                    or "<svg" not in dashboard
                    or "service_ingest_items_total" not in dashboard):
                print("FAIL: /dashboard malformed", file=sys.stderr)
                return 1
            if "<script" in dashboard or "src=" in dashboard:
                print("FAIL: /dashboard not self-contained", file=sys.stderr)
                return 1
            print(f"PASS /dashboard self-contained HTML ({len(dashboard)} bytes)")

    with MultiTenantService(
        lambda: ChainMisraGries(eps=0.01), num_shards=1
    ) as tenancy:
        for tenant in ("acme", "globex"):
            keys = np.arange(50, dtype=np.int64)
            receipt = tenancy.ingest_batch(tenant, keys, keys.astype(float))
            tenancy.wait_for(receipt)
        with tenancy.serve_introspection() as server:
            scraped = json.loads(curl(server.url + "/tenants"))
            expected = tenancy.tenants()
            if scraped != expected:
                print(
                    f"FAIL: /tenants differs:\nscraped:  {scraped}\n"
                    f"expected: {expected}",
                    file=sys.stderr,
                )
                return 1
            if scraped["known"] != 2 or set(scraped["resident_order"]) != {
                "acme",
                "globex",
            }:
                print(f"FAIL: /tenants fleet wrong: {scraped}", file=sys.stderr)
                return 1
            print(
                f"PASS /tenants matches tenants() "
                f"(known={scraped['known']}, resident={scraped['resident']})"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
