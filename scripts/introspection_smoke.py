"""CI smoke: the live introspection server answers over real HTTP.

Starts a sharded service with telemetry enabled, ingests a traced workload,
serves introspection on an ephemeral port, then hits it with ``curl`` from
a real subprocess: ``/healthz`` must answer 200 with a healthy payload and
the ``/metrics`` body must be byte-identical to the in-process
``prometheus_text()`` rendering.  Exits non-zero (with a diff) on any
mismatch.  Run from the repo root::

    PYTHONPATH=src python scripts/introspection_smoke.py
"""

import difflib
import json
import subprocess
import sys

from repro.core import ChainMisraGries
from repro.service import ShardedSketchService
from repro.telemetry import export
from repro.telemetry.registry import TELEMETRY


def curl(url: str) -> str:
    """GET ``url`` with curl; raises on network errors and non-2xx codes."""
    return subprocess.run(
        ["curl", "-fsS", url], check=True, capture_output=True, text=True
    ).stdout


def main() -> int:
    TELEMETRY.enable()
    with ShardedSketchService(
        lambda: ChainMisraGries(eps=0.01), num_shards=2
    ) as service:
        service.ingest_batch(list(range(200)), [float(t) for t in range(200)])
        if not service.drain(timeout=30):
            print("FAIL: service did not drain", file=sys.stderr)
            return 1
        service.estimate_at(3, 100.0)

        with service.serve_introspection() as server:
            health = json.loads(curl(server.url + "/healthz"))
            if health.get("healthy") is not True:
                print(f"FAIL: /healthz unhealthy: {health}", file=sys.stderr)
                return 1
            print(f"PASS /healthz 200 healthy (watermark={health['watermark']})")

            scraped = curl(server.url + "/metrics")
            expected = export.prometheus_text()
            if scraped != expected:
                diff = "\n".join(
                    difflib.unified_diff(
                        expected.splitlines(),
                        scraped.splitlines(),
                        "prometheus_text()",
                        "GET /metrics",
                        lineterm="",
                    )
                )
                print(f"FAIL: /metrics differs:\n{diff}", file=sys.stderr)
                return 1
            lines = len(scraped.splitlines())
            print(f"PASS /metrics identical to prometheus_text() ({lines} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
