"""Aggregate ``benchmarks/results/BENCH_*.json`` into one markdown report.

Each bench suite writes a machine-readable ``BENCH_<name>.json`` and each PR
re-runs some of them, so the perf history lives scattered across files and
git revisions.  This script folds it back together:

* a **current snapshot** table per suite — workload, primary throughput
  metric, and any speedup ratios the suite recorded;
* a **trajectory** table — workload x commit, the primary metric of every
  git revision that touched the suite's JSON (oldest to newest), plus the
  latest/oldest ratio.  On a shallow CI checkout the trajectory degrades
  to the current column alone rather than failing.

Run from the repo root::

    python scripts/bench_report.py [--output benchmarks/results/BENCH_REPORT.md]

Prints the report to stdout and, with ``--output``, also writes it to a
file (CI uploads that as an artifact).  Exits non-zero only when no
``BENCH_*.json`` exists at all.
"""

import argparse
import json
import pathlib
import subprocess
import sys

RESULTS_DIR = pathlib.Path("benchmarks/results")

# the headline number of a workload row, first match wins
PRIMARY_METRIC_KEYS = (
    "updates_per_s",
    "batch_updates_per_s",
    "enabled_updates_per_s",
    "events_per_s",
    "ingest_items_per_s",
    "queries_per_s",
)


def _fmt(value):
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:,.2f}" if abs(value) < 100 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _workloads(doc: dict) -> dict:
    """The ``workload -> {metric: value}`` rows of one BENCH document.

    Most suites nest them under ``results``; flat documents (e.g. the
    tenancy soak) become a single pseudo-workload from their top-level
    numeric scalars.
    """
    results = doc.get("results")
    if isinstance(results, dict) and all(
        isinstance(v, dict) for v in results.values()
    ):
        return results
    flat = {
        k: v
        for k, v in doc.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    return {"(suite)": flat} if flat else {}


def _primary(metrics: dict):
    """(metric_name, value) headline for one workload row."""
    for key in PRIMARY_METRIC_KEYS:
        if key in metrics:
            return key, metrics[key]
    for key, value in metrics.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return key, value
    return None, None


def _speedups(metrics: dict) -> str:
    parts = [
        f"{k}={_fmt(v)}"
        for k, v in metrics.items()
        if ("speedup" in k or k.endswith("_over_disabled"))
        and isinstance(v, (int, float))
    ]
    return ", ".join(parts) or "-"


def _history(path: pathlib.Path):
    """[(short_sha, date, doc)] for every commit touching ``path``, oldest first.

    Empty on shallow clones, outside a work tree, or for uncommitted files —
    the caller then reports the working-tree snapshot alone.
    """
    try:
        log = subprocess.run(
            ["git", "log", "--follow", "--format=%h %ad", "--date=short",
             "--", str(path)],
            check=True, capture_output=True, text=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return []
    revisions = []
    for line in reversed(log.splitlines()):
        sha, _, date = line.partition(" ")
        try:
            blob = subprocess.run(
                ["git", "show", f"{sha}:{path.as_posix()}"],
                check=True, capture_output=True, text=True,
            ).stdout
            revisions.append((sha, date, json.loads(blob)))
        except (subprocess.CalledProcessError, OSError, ValueError):
            continue  # file absent or unparsable at that revision
    return revisions


def snapshot_table(name: str, doc: dict) -> list:
    lines = [f"### {name} (current)", ""]
    context = ", ".join(
        f"{k}={_fmt(v)}"
        for k, v in doc.items()
        if k != "results" and isinstance(v, (int, float, bool, str))
    )
    if context:
        lines += [f"_{context}_", ""]
    lines += [
        "| workload | metric | value | speedups |",
        "|---|---|---:|---|",
    ]
    for workload, metrics in _workloads(doc).items():
        metric, value = _primary(metrics)
        lines.append(
            f"| {workload} | {metric or '-'} | "
            f"{_fmt(value) if value is not None else '-'} | "
            f"{_speedups(metrics)} |"
        )
    lines.append("")
    return lines


def trajectory_table(name: str, path: pathlib.Path, current: dict) -> list:
    revisions = _history(path)
    if not revisions:
        return [
            f"### {name} (trajectory)", "",
            "_no git history available (shallow clone or uncommitted "
            "results) — see the current snapshot above_", "",
        ]
    if json.dumps(revisions[-1][2], sort_keys=True) != json.dumps(
        current, sort_keys=True
    ):
        revisions.append(("worktree", "now", current))
    columns = [f"{sha} ({date})" for sha, date, _ in revisions]
    workloads = []  # ordered union across revisions
    for _, _, doc in revisions:
        for workload in _workloads(doc):
            if workload not in workloads:
                workloads.append(workload)
    lines = [
        f"### {name} (trajectory)", "",
        "| workload | " + " | ".join(columns) + " | latest/oldest |",
        "|---|" + "---:|" * (len(columns) + 1),
    ]
    for workload in workloads:
        cells, values = [], []
        for _, _, doc in revisions:
            metrics = _workloads(doc).get(workload)
            _, value = _primary(metrics) if metrics else (None, None)
            cells.append(_fmt(value) if value is not None else "-")
            if isinstance(value, (int, float)):
                values.append(value)
        ratio = (
            f"{values[-1] / values[0]:.2f}x"
            if len(values) >= 2 and values[0]
            else "-"
        )
        lines.append(f"| {workload} | " + " | ".join(cells) + f" | {ratio} |")
    lines.append("")
    return lines


def build_report(results_dir: pathlib.Path) -> str:
    paths = sorted(results_dir.glob("BENCH_*.json"))
    if not paths:
        raise FileNotFoundError(f"no BENCH_*.json under {results_dir}")
    lines = ["# Benchmark trajectory report", ""]
    for path in paths:
        name = path.stem.replace("BENCH_", "")
        try:
            doc = json.loads(path.read_text())
        except ValueError as exc:
            lines += [f"### {name}", "", f"_unparsable: {exc}_", ""]
            continue
        lines += snapshot_table(name, doc)
        lines += trajectory_table(name, path, doc)
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", type=pathlib.Path, default=RESULTS_DIR
    )
    parser.add_argument("--output", type=pathlib.Path, default=None)
    args = parser.parse_args()
    try:
        report = build_report(args.results_dir)
    except FileNotFoundError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(report)
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report + "\n")
        print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
